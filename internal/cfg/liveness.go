package cfg

import "predication/internal/ir"

// BitSet is a dense bit set over register numbers.
type BitSet []uint64

// NewBitSet creates a bit set able to hold values in [0, n).
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds i to the set.
func (s BitSet) Set(i int32) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int32) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int32) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith unions other into s, reporting whether s changed.
func (s BitSet) OrWith(other BitSet) bool {
	changed := false
	for i, w := range other {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Copy duplicates the set.
func (s BitSet) Copy() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Liveness holds per-block live-in/live-out sets for integer/FP registers
// and for predicate registers.
//
// Predicated definitions do not kill: an instruction guarded by a predicate
// may not execute, so the prior value of its destination can flow through.
// CMov and CMovCom likewise read their destination (conditional write).
type Liveness struct {
	G *Graph
	// RegIn/RegOut are indexed by block ID.
	RegIn, RegOut   []BitSet
	PredIn, PredOut []BitSet
}

// ComputeLiveness runs iterative backward liveness over the function.
//
// All 4n per-block sets plus the iteration scratch sets are carved out of a
// single backing array: the pass runs after every mutating transformation,
// so per-set allocations would dominate its cost.
func ComputeLiveness(g *Graph) *Liveness {
	f := g.F
	n := len(f.Blocks)
	rw := (int(f.NextReg) + 63) / 64
	pw := (int(f.NextPReg) + 63) / 64
	live := 0
	for _, b := range f.Blocks {
		if b != nil && !b.Dead {
			live++
		}
	}
	backing := make([]uint64, (2*live+2)*(rw+pw))
	carve := func(w int) BitSet {
		s := BitSet(backing[:w:w])
		backing = backing[w:]
		return s
	}
	// Dead blocks keep nil sets; formation can leave many of them behind,
	// and sizing the arrays to the live count keeps this pass cheap on
	// functions late in the pipeline.  Consumers (backwardStep, DCE) already
	// treat a nil set as empty.
	lv := &Liveness{G: g,
		RegIn: make([]BitSet, n), RegOut: make([]BitSet, n),
		PredIn: make([]BitSet, n), PredOut: make([]BitSet, n)}
	for _, b := range f.Blocks {
		if b == nil || b.Dead {
			continue
		}
		lv.RegIn[b.ID] = carve(rw)
		lv.RegOut[b.ID] = carve(rw)
		lv.PredIn[b.ID] = carve(pw)
		lv.PredOut[b.ID] = carve(pw)
	}
	out, in := carve(rw), carve(rw)
	pout, pin := carve(pw), carve(pw)
	for changed := true; changed; {
		changed = false
		// Iterate blocks in reverse RPO for fast convergence.
		for i := len(g.RPO) - 1; i >= 0; i-- {
			id := g.RPO[i]
			b := f.Blocks[id]
			if b == nil || b.Dead {
				continue // reachable only via a stray edge; no sets
			}
			clear(out)
			clear(pout)
			for _, s := range g.Succs[id] {
				out.OrWith(lv.RegIn[s])
				pout.OrWith(lv.PredIn[s])
			}
			if lv.RegOut[id].OrWith(out) {
				changed = true
			}
			if lv.PredOut[id].OrWith(pout) {
				changed = true
			}
			copy(in, lv.RegOut[id])
			copy(pin, lv.PredOut[id])
			lv.backwardStep(b.Instrs, in, pin)
			if lv.RegIn[id].OrWith(in) {
				changed = true
			}
			if lv.PredIn[id].OrWith(pin) {
				changed = true
			}
		}
	}
	return lv
}

// backwardStep updates live sets walking the instruction list backwards.
// Superblocks and hyperblocks contain mid-block exit branches: at each
// branch the target block's live-ins become live, since control may leave
// there (using the current, monotonically growing approximations keeps the
// fixpoint iteration correct).
func (lv *Liveness) backwardStep(instrs []*ir.Instr, regs BitSet, preds BitSet) {
	var srcBuf [4]ir.Reg
	var pBuf [2]ir.PReg
	for i := len(instrs) - 1; i >= 0; i-- {
		in := instrs[i]
		switch in.Op {
		case ir.Jump, ir.BrEQ, ir.BrNE, ir.BrLT, ir.BrLE, ir.BrGT, ir.BrGE:
			if in.Target >= 0 && in.Target < len(lv.RegIn) && lv.RegIn[in.Target] != nil {
				regs.OrWith(lv.RegIn[in.Target])
				preds.OrWith(lv.PredIn[in.Target])
			}
		}
		if d := in.DefReg(); d != ir.RNone {
			// A guarded or conditional definition may not execute, so it
			// does not kill the incoming value.
			if in.Guard == ir.PNone && !in.ConditionalDef() {
				regs.Clear(int32(d))
			}
		}
		if in.Op == ir.PredDef {
			for _, p := range in.PredDefs(pBuf[:0]) {
				// Only unconditional-type destinations of unguarded defines
				// always write; everything else is a conditional update.
				_ = p
			}
			if in.Guard == ir.PNone {
				for _, pd := range []ir.PredDest{in.P1, in.P2} {
					if pd.Type == ir.PredU || pd.Type == ir.PredUBar {
						preds.Clear(int32(pd.P))
					}
				}
			}
			// OR/AND-type destinations read the prior value semantically.
			for _, pd := range []ir.PredDest{in.P1, in.P2} {
				if pd.Type != ir.PredNone && pd.Type != ir.PredU && pd.Type != ir.PredUBar {
					preds.Set(int32(pd.P))
				}
			}
		}
		if in.Op == ir.PredClear || in.Op == ir.PredSet {
			if in.Guard == ir.PNone {
				for w := range preds {
					preds[w] = 0
				}
			}
		}
		for _, s := range in.SrcRegs(srcBuf[:0]) {
			regs.Set(int32(s))
		}
		if in.Guard != ir.PNone {
			preds.Set(int32(in.Guard))
		}
	}
}

// LiveAt returns the registers live immediately before instruction index
// idx of block id (walking backwards from the block's live-out).
func (lv *Liveness) LiveAt(id, idx int) BitSet {
	b := lv.G.F.Blocks[id]
	regs := lv.RegOut[id].Copy()
	preds := lv.PredOut[id].Copy()
	if idx < len(b.Instrs) {
		lv.backwardStep(b.Instrs[idx:], regs, preds)
	}
	return regs
}
