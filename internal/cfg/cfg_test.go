package cfg

import (
	"testing"
	"testing/quick"

	"predication/internal/ir"
)

// diamond builds:  entry -> {then, else} -> join -> exit(halt)
func diamond() (*ir.Func, [5]int) {
	f := ir.NewFunc("t")
	r := f.NewReg()
	entry := f.EntryBlock()
	then := f.NewBlock()
	els := f.NewBlock()
	join := f.NewBlock()
	exit := f.NewBlock()
	entry.Append(ir.NewBranch(ir.EQ, ir.R(r), ir.Imm(0), els.ID))
	entry.Fall = then.ID
	then.Append(ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(1)))
	then.Append(&ir.Instr{Op: ir.Jump, Target: join.ID})
	els.Append(ir.NewInstr(ir.Sub, r, ir.R(r), ir.Imm(1)))
	els.Fall = join.ID
	join.Fall = exit.ID
	exit.Append(&ir.Instr{Op: ir.Halt})
	return f, [5]int{entry.ID, then.ID, els.ID, join.ID, exit.ID}
}

func TestGraphStructure(t *testing.T) {
	f, ids := diamond()
	g := NewGraph(f)
	entry, then, els, join, exit := ids[0], ids[1], ids[2], ids[3], ids[4]
	if len(g.Succs[entry]) != 2 {
		t.Fatalf("entry succs: %v", g.Succs[entry])
	}
	if len(g.Preds[join]) != 2 {
		t.Fatalf("join preds: %v", g.Preds[join])
	}
	if len(g.Succs[exit]) != 0 {
		t.Fatalf("exit succs: %v", g.Succs[exit])
	}
	for _, id := range ids {
		if !g.Reachable(id) {
			t.Errorf("B%d unreachable", id)
		}
	}
	if g.RPO[0] != entry {
		t.Errorf("RPO must start at entry: %v", g.RPO)
	}
	// then and els precede join in RPO.
	pos := map[int]int{}
	for i, id := range g.RPO {
		pos[id] = i
	}
	if pos[then] > pos[join] || pos[els] > pos[join] {
		t.Errorf("RPO order wrong: %v", g.RPO)
	}
}

func TestDominators(t *testing.T) {
	f, ids := diamond()
	g := NewGraph(f)
	idom := g.Dominators()
	entry, then, els, join, exit := ids[0], ids[1], ids[2], ids[3], ids[4]
	if idom[then] != entry || idom[els] != entry {
		t.Error("branch sides dominated by entry")
	}
	if idom[join] != entry {
		t.Errorf("join idom = %d, want entry (neither side dominates)", idom[join])
	}
	if idom[exit] != join {
		t.Errorf("exit idom = %d, want join", idom[exit])
	}
	if !Dominates(idom, entry, exit) || Dominates(idom, then, join) {
		t.Error("Dominates relation wrong")
	}
}

func TestNaturalLoops(t *testing.T) {
	f := ir.NewFunc("t")
	r := f.NewReg()
	entry := f.EntryBlock()
	hdr := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	entry.Fall = hdr.ID
	hdr.Append(ir.NewBranch(ir.GE, ir.R(r), ir.Imm(10), exit.ID))
	hdr.Fall = body.ID
	body.Append(ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(1)))
	body.Append(&ir.Instr{Op: ir.Jump, Target: hdr.ID})
	exit.Append(&ir.Instr{Op: ir.Halt})

	g := NewGraph(f)
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != hdr.ID {
		t.Errorf("header %d, want %d", l.Header, hdr.ID)
	}
	if !l.Blocks[hdr.ID] || !l.Blocks[body.ID] || l.Blocks[exit.ID] || l.Blocks[entry.ID] {
		t.Errorf("loop body %v", l.Blocks)
	}
	if len(l.Backedges) != 1 || l.Backedges[0] != body.ID {
		t.Errorf("backedges %v", l.Backedges)
	}
}

func TestLivenessBasics(t *testing.T) {
	f, ids := diamond()
	g := NewGraph(f)
	lv := ComputeLiveness(g)
	// r (register 1) is read by the entry branch: live-in at entry.
	if !lv.RegIn[ids[0]].Has(1) {
		t.Error("r must be live-in at entry")
	}
	// After the halt nothing is live.
	if lv.RegOut[ids[4]].Has(1) {
		t.Error("nothing is live out of the exit block")
	}
}

// TestLivenessGuardedDefsDoNotKill: a predicated definition must not kill
// the incoming value.
func TestLivenessGuardedDefsDoNotKill(t *testing.T) {
	f := ir.NewFunc("t")
	r := f.NewReg()
	p := f.NewPReg()
	entry := f.EntryBlock()
	next := f.NewBlock()
	// entry: r defined under a guard, then used in next.
	guarded := ir.NewInstr(ir.Mov, r, ir.Imm(5))
	guarded.Guard = p
	entry.Append(guarded)
	entry.Fall = next.ID
	next.Append(ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(1)))
	next.Append(&ir.Instr{Op: ir.Halt})
	g := NewGraph(f)
	lv := ComputeLiveness(g)
	if !lv.RegIn[entry.ID].Has(int32(r)) {
		t.Error("guarded def must not kill: r live-in at entry")
	}
	// An unguarded def does kill.
	guarded.Guard = ir.PNone
	lv = ComputeLiveness(NewGraph(f))
	if lv.RegIn[entry.ID].Has(int32(r)) {
		t.Error("unguarded def kills: r not live-in")
	}
}

// TestLivenessMidBlockBranch: a register killed later in the block is still
// live before an earlier exit branch whose target reads it (the bug found
// by the pipeline fuzzer).
func TestLivenessMidBlockBranch(t *testing.T) {
	f := ir.NewFunc("t")
	r := f.NewReg()
	entry := f.EntryBlock()
	target := f.NewBlock()
	tail := f.NewBlock()
	entry.Append(ir.NewBranch(ir.EQ, ir.R(f.NewReg()), ir.Imm(0), target.ID))
	entry.Append(ir.NewInstr(ir.Mov, r, ir.Imm(7))) // kills r after the branch
	entry.Fall = tail.ID
	target.Append(ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(1))) // reads r
	target.Fall = tail.ID
	tail.Append(&ir.Instr{Op: ir.Halt})
	g := NewGraph(f)
	lv := ComputeLiveness(g)
	if !lv.RegIn[entry.ID].Has(int32(r)) {
		t.Error("r is live into the entry block through the mid-block branch")
	}
}

// TestBitSetModel checks BitSet against a map-based model.
func TestBitSetModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewBitSet(512)
		m := map[int32]bool{}
		for _, op := range ops {
			v := int32(op % 512)
			switch (op / 512) % 3 {
			case 0:
				s.Set(v)
				m[v] = true
			case 1:
				s.Clear(v)
				delete(m, v)
			case 2:
				if s.Has(v) != m[v] {
					return false
				}
			}
		}
		for v := int32(0); v < 512; v++ {
			if s.Has(v) != m[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileQueries(t *testing.T) {
	p := NewProfile()
	in := &ir.Instr{Op: ir.BrEQ}
	p.Taken[in] = 30
	p.NotTaken[in] = 70
	prob, n := p.TakenProb(in)
	if n != 100 || prob != 0.3 {
		t.Errorf("TakenProb = %v, %v", prob, n)
	}
	unknown := &ir.Instr{Op: ir.BrNE}
	if prob, n := p.TakenProb(unknown); prob != 0 || n != 0 {
		t.Errorf("unknown branch: %v, %v", prob, n)
	}
	b := &ir.Block{ID: 1}
	p.BlockCount[b] = 42
	if p.Weight(b) != 42 {
		t.Error("Weight")
	}
	p.FallExit[b] = 9
	if p.EdgeWeight(b, nil) != 9 || p.EdgeWeight(b, in) != 30 {
		t.Error("EdgeWeight")
	}
}
