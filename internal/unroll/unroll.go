// Package unroll implements CFG-level loop unrolling.
//
// The paper's §5 expects "more advanced compiler optimization techniques"
// to increase both models' gains; unrolling is the canonical one for this
// pipeline: replicating a loop body U times before hyperblock formation
// lets one hyperblock cover U iterations, amortizing the loop branch and
// multiplying the rarely-taken exits available to branch combining (the
// mechanism behind extreme branch reductions like the paper's cmp).
//
// The transformation is trip-count agnostic and safe for any natural
// loop: the body is cloned U-1 times, each copy's back edges retarget the
// next copy's header, and the last copy's back edges return to the
// original header.  Every copy re-evaluates its own loop condition, so
// arbitrary (non-counted) loops keep their semantics; exits keep their
// original targets.
package unroll

import (
	"predication/internal/cfg"
	"predication/internal/ir"
)

// Params selects which loops unroll and how much.
type Params struct {
	// Factor is the total number of body copies (1 disables unrolling).
	Factor int
	// MaxBodyInstrs bounds the size of loops worth unrolling.
	MaxBodyInstrs int
	// MinCount is the minimum header execution count.
	MinCount int64
}

// DefaultParams returns a moderate configuration (disabled: Factor 1; the
// extension experiments sweep the factor).
func DefaultParams() Params {
	return Params{Factor: 1, MaxBodyInstrs: 48, MinCount: 64}
}

// Apply unrolls eligible innermost loops in every function.  It returns
// the number of loops unrolled.  When a profile is supplied, cloned blocks
// and branches inherit their originals' counts so downstream
// profile-guided passes see consistent ratios.
func Apply(p *ir.Program, prof *cfg.Profile, params Params) int {
	if params.Factor <= 1 {
		return 0
	}
	unrolled := 0
	for _, f := range p.Funcs {
		unrolled += applyFunc(f, prof, params)
	}
	return unrolled
}

func applyFunc(f *ir.Func, prof *cfg.Profile, params Params) int {
	g := cfg.NewGraph(f)
	loops := g.NaturalLoops()
	inLoop := map[int]int{} // block -> number of loops containing it
	for _, l := range loops {
		for id := range l.Blocks {
			inLoop[id]++
		}
	}
	unrolled := 0
	for _, l := range loops {
		// Innermost only: every body block belongs to exactly this loop.
		innermost := true
		size := 0
		hazard := false
		for id := range l.Blocks {
			if inLoop[id] != 1 {
				innermost = false
			}
			b := f.Blocks[id]
			size += len(b.Instrs)
			for _, in := range b.Instrs {
				if in.Op == ir.JSR || in.Op == ir.Ret || in.Op == ir.Halt {
					hazard = true
				}
			}
		}
		if !innermost || hazard || size > params.MaxBodyInstrs {
			continue
		}
		if prof != nil && prof.Weight(f.Blocks[l.Header]) < params.MinCount {
			continue
		}
		unrollLoop(f, prof, l, params.Factor)
		unrolled++
	}
	return unrolled
}

// unrollLoop clones the loop body factor-1 times and rechains back edges.
func unrollLoop(f *ir.Func, prof *cfg.Profile, l *cfg.Loop, factor int) {
	// copies[k] maps original block ID -> copy-k block (copy 0 is the
	// original).
	copies := make([]map[int]int, factor)
	copies[0] = map[int]int{}
	for id := range l.Blocks {
		copies[0][id] = id
	}
	for k := 1; k < factor; k++ {
		copies[k] = map[int]int{}
		for id := range l.Blocks {
			ob := f.Blocks[id]
			nb := f.NewBlock()
			nb.Name = ob.Name + ".u"
			nb.Fall = ob.Fall
			for _, in := range ob.Instrs {
				cp := in.Clone()
				nb.Instrs = append(nb.Instrs, cp)
				if prof != nil {
					if n, ok := prof.Taken[in]; ok {
						prof.Taken[cp] = n
					}
					if n, ok := prof.NotTaken[in]; ok {
						prof.NotTaken[cp] = n
					}
				}
			}
			copies[k][id] = nb.ID
			if prof != nil {
				prof.BlockCount[nb] = prof.BlockCount[ob]
				prof.FallExit[nb] = prof.FallExit[ob]
			}
		}
	}
	// Rewire each copy: internal edges stay within the copy; back edges
	// (to the header) go to the NEXT copy's header (the last copy wraps to
	// the original header).
	for k := 0; k < factor; k++ {
		nextHeader := l.Header
		if k+1 < factor {
			nextHeader = copies[k+1][l.Header]
		}
		for id := range l.Blocks {
			b := f.Blocks[copies[k][id]]
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.Jump, ir.BrEQ, ir.BrNE, ir.BrLT, ir.BrLE, ir.BrGT, ir.BrGE:
					if in.Target == l.Header {
						in.Target = nextHeader
					} else if c, ok := copies[k][in.Target]; ok {
						in.Target = c
					}
					// Exits keep their original targets.
				}
			}
			if b.Fall == l.Header {
				b.Fall = nextHeader
			} else if c, ok := copies[k][b.Fall]; ok {
				b.Fall = c
			}
		}
	}
}
