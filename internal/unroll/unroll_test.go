package unroll_test

import (
	"testing"

	"predication/internal/bench"
	"predication/internal/cfg"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/machine"
	"predication/internal/progen"
	"predication/internal/unroll"
)

// TestUnrollSemanticsKernels: unrolled pipelines preserve every kernel's
// checksum under every model and factors 2 and 4.
func TestUnrollSemanticsKernels(t *testing.T) {
	for _, k := range bench.All() {
		if testing.Short() && k.Name != "cmp" && k.Name != "wc" {
			continue
		}
		ref, err := emu.Run(k.Build(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Word(bench.CheckAddr)
		for _, factor := range []int{2, 4} {
			for _, m := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
				opts := core.DefaultOptions(machine.Issue8Br1())
				opts.Unroll.Factor = factor
				c, err := core.Compile(k.Build(), m, opts)
				if err != nil {
					t.Fatalf("%s %v U=%d: %v", k.Name, m, factor, err)
				}
				res, err := emu.Run(c.Prog, emu.Options{})
				if err != nil {
					t.Fatalf("%s %v U=%d: %v", k.Name, m, factor, err)
				}
				if got := res.Word(bench.CheckAddr); got != want {
					t.Errorf("%s %v U=%d: checksum %#x, want %#x", k.Name, m, factor, got, want)
				}
			}
		}
	}
}

// TestUnrollRandomPrograms fuzzes the standalone pass.
func TestUnrollRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		for _, gen := range []func(uint64, progen.Params) interface {
			Verify() error
		}{} {
			_ = gen
		}
		check := func(build func() interface {
			Verify() error
		}) {
			_ = build
		}
		_ = check
		// Plain generator.
		ref, _ := emu.Run(progen.Generate(seed, progen.Default()), emu.Options{})
		p := progen.Generate(seed, progen.Default())
		p.Normalize()
		prof := cfg.NewProfile()
		emu.Run(p, emu.Options{Profile: prof})
		params := unroll.DefaultParams()
		params.Factor = 3
		params.MaxBodyInstrs = 1 << 10
		params.MinCount = 1
		unroll.Apply(p, prof, params)
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := emu.Run(p, emu.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Word(progen.CheckAddr) != ref.Word(progen.CheckAddr) {
			t.Errorf("seed %d: unrolling changed semantics", seed)
		}
		// Nested generator: only the inner loop unrolls.
		ref2, _ := emu.Run(progen.GenerateNested(seed, progen.Default()), emu.Options{})
		p2 := progen.GenerateNested(seed, progen.Default())
		p2.Normalize()
		prof2 := cfg.NewProfile()
		emu.Run(p2, emu.Options{Profile: prof2})
		unroll.Apply(p2, prof2, params)
		if err := p2.Verify(); err != nil {
			t.Fatalf("seed %d nested: %v", seed, err)
		}
		got2, err := emu.Run(p2, emu.Options{})
		if err != nil {
			t.Fatalf("seed %d nested: %v", seed, err)
		}
		if got2.Word(progen.CheckAddr) != ref2.Word(progen.CheckAddr) {
			t.Errorf("seed %d: nested unrolling changed semantics", seed)
		}
	}
}

// TestUnrollAmortizesBranches: unrolling cmp cuts its dynamic branch count
// further (one loop branch per U words instead of per 8).
func TestUnrollAmortizesBranches(t *testing.T) {
	k, _ := bench.ByName("cmp")
	count := func(factor int) int64 {
		opts := core.DefaultOptions(machine.Issue8Br1())
		opts.Unroll.Factor = factor
		c, err := core.Compile(k.Build(), core.FullPred, opts)
		if err != nil {
			t.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		br := int64(0)
		for _, ev := range run.Trace {
			if ev.In.Op.IsBranch() && !ev.Nullified() {
				br++
			}
		}
		return br
	}
	base := count(1)
	unrolled := count(2)
	if unrolled >= base {
		t.Errorf("unrolling did not reduce branches: %d -> %d", base, unrolled)
	}
}
