package machine

import (
	"strings"
	"testing"
)

// TestValidateAcceptsPaperConfigs: every shipped configuration passes.
func TestValidateAcceptsPaperConfigs(t *testing.T) {
	for _, cfg := range []Config{
		Issue1(), Issue1Cache(), Issue4Br1(), Issue8Br1(), Issue8Br2(), Issue8Br1Cache(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsNonPowerOfTwoBTB(t *testing.T) {
	for _, entries := range []int{0, -4, 3, 1000} {
		cfg := Issue8Br1()
		cfg.BTBEntries = entries
		err := cfg.Validate()
		if err == nil {
			t.Errorf("BTBEntries=%d accepted, want error", entries)
			continue
		}
		if !strings.Contains(err.Error(), "BTBEntries") {
			t.Errorf("BTBEntries=%d: error %q does not name the field", entries, err)
		}
	}
}

func TestValidateRejectsBadCacheGeometry(t *testing.T) {
	blocky := Issue8Br1Cache()
	blocky.ICache.BlockSize = 48 // not a power of two
	if err := blocky.Validate(); err == nil || !strings.Contains(err.Error(), "ICache.BlockSize") {
		t.Errorf("BlockSize=48: error = %v, want ICache.BlockSize complaint", err)
	}

	liney := Issue8Br1Cache()
	liney.DCache.SizeBytes = 96 << 10 // 1536 lines: not a power of two
	if err := liney.Validate(); err == nil || !strings.Contains(err.Error(), "lines") {
		t.Errorf("96K/64B: error = %v, want line-count complaint", err)
	}

	ragged := Issue8Br1Cache()
	ragged.ICache.SizeBytes = (64 << 10) + 13 // not block-aligned
	if err := ragged.Validate(); err == nil {
		t.Error("unaligned cache size accepted, want error")
	}
}

// TestValidateBandwidthAndPenalties is the regression test for the
// config-validation hang: IssueWidth=0 (or BranchSlots=0) used to pass
// Validate and then spin the simulator's slot-allocation loop forever,
// because slots reset to zero on every bumped cycle and `slots < width`
// never became true.  Validate now rejects non-positive bandwidth,
// negative penalties, and inconsistent OoO window sizes up front.
func TestValidateBandwidthAndPenalties(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantSub string // "" means the config must validate
	}{
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }, "IssueWidth"},
		{"negative issue width", func(c *Config) { c.IssueWidth = -8 }, "IssueWidth"},
		{"zero branch slots", func(c *Config) { c.BranchSlots = 0 }, "BranchSlots"},
		{"negative branch slots", func(c *Config) { c.BranchSlots = -1 }, "BranchSlots"},
		{"negative mispredict penalty", func(c *Config) { c.MispredictPenalty = -2 }, "MispredictPenalty"},
		{"negative taken bubble", func(c *Config) { c.TakenBranchBubble = -1 }, "TakenBranchBubble"},
		{"negative predicate distance", func(c *Config) { c.PredicateDistance = -3 }, "PredicateDistance"},
		{"negative miss cycles", func(c *Config) { c.PerfectCache = false; c.DCache.MissCycles = -12 }, "MissCycles"},
		{"ooo without window", func(c *Config) { c.OoO = true }, "WindowSize"},
		{"ooo negative window", func(c *Config) { c.OoO = true; c.WindowSize = -32 }, "WindowSize"},
		{"window without ooo", func(c *Config) { c.WindowSize = 16 }, "WindowSize"},
		{"ooo window of one", func(c *Config) { c.OoO = true; c.WindowSize = 1 }, ""},
		{"ooo window of thirty-two", func(c *Config) { c.OoO = true; c.WindowSize = 32 }, ""},
	}
	for _, tt := range tests {
		cfg := Issue8Br1()
		tt.mutate(&cfg)
		err := cfg.Validate()
		if tt.wantSub == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tt.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error naming %s", tt.name, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("%s: error %q does not name %s", tt.name, err, tt.wantSub)
		}
	}
}

// TestValidateSkipsCachesWhenPerfect: cache geometry is irrelevant (and
// unchecked) when the cache models are disabled.
func TestValidateSkipsCachesWhenPerfect(t *testing.T) {
	cfg := Issue8Br1() // PerfectCache
	cfg.ICache.BlockSize = 3
	cfg.DCache.SizeBytes = 7
	if err := cfg.Validate(); err != nil {
		t.Errorf("perfect-cache config rejected for cache geometry: %v", err)
	}
}
