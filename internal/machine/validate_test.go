package machine

import (
	"strings"
	"testing"
)

// TestValidateAcceptsPaperConfigs: every shipped configuration passes.
func TestValidateAcceptsPaperConfigs(t *testing.T) {
	for _, cfg := range []Config{
		Issue1(), Issue1Cache(), Issue4Br1(), Issue8Br1(), Issue8Br2(), Issue8Br1Cache(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsNonPowerOfTwoBTB(t *testing.T) {
	for _, entries := range []int{0, -4, 3, 1000} {
		cfg := Issue8Br1()
		cfg.BTBEntries = entries
		err := cfg.Validate()
		if err == nil {
			t.Errorf("BTBEntries=%d accepted, want error", entries)
			continue
		}
		if !strings.Contains(err.Error(), "BTBEntries") {
			t.Errorf("BTBEntries=%d: error %q does not name the field", entries, err)
		}
	}
}

func TestValidateRejectsBadCacheGeometry(t *testing.T) {
	blocky := Issue8Br1Cache()
	blocky.ICache.BlockSize = 48 // not a power of two
	if err := blocky.Validate(); err == nil || !strings.Contains(err.Error(), "ICache.BlockSize") {
		t.Errorf("BlockSize=48: error = %v, want ICache.BlockSize complaint", err)
	}

	liney := Issue8Br1Cache()
	liney.DCache.SizeBytes = 96 << 10 // 1536 lines: not a power of two
	if err := liney.Validate(); err == nil || !strings.Contains(err.Error(), "lines") {
		t.Errorf("96K/64B: error = %v, want line-count complaint", err)
	}

	ragged := Issue8Br1Cache()
	ragged.ICache.SizeBytes = (64 << 10) + 13 // not block-aligned
	if err := ragged.Validate(); err == nil {
		t.Error("unaligned cache size accepted, want error")
	}
}

// TestValidateSkipsCachesWhenPerfect: cache geometry is irrelevant (and
// unchecked) when the cache models are disabled.
func TestValidateSkipsCachesWhenPerfect(t *testing.T) {
	cfg := Issue8Br1() // PerfectCache
	cfg.ICache.BlockSize = 3
	cfg.DCache.SizeBytes = 7
	if err := cfg.Validate(); err != nil {
		t.Errorf("perfect-cache config rejected for cache geometry: %v", err)
	}
}
