package machine

import (
	"testing"

	"predication/internal/ir"
)

func TestPaperConfigs(t *testing.T) {
	cases := []struct {
		cfg     Config
		issue   int
		branch  int
		perfect bool
	}{
		{Issue8Br1(), 8, 1, true},
		{Issue8Br2(), 8, 2, true},
		{Issue4Br1(), 4, 1, true},
		{Issue8Br1Cache(), 8, 1, false},
		{Issue1(), 1, 1, true},
		{Issue1Cache(), 1, 1, false},
	}
	for _, c := range cases {
		if c.cfg.IssueWidth != c.issue || c.cfg.BranchSlots != c.branch || c.cfg.PerfectCache != c.perfect {
			t.Errorf("%s: %+v", c.cfg.Name, c.cfg)
		}
		// Paper parameters (§4.1).
		if c.cfg.BTBEntries != 1024 || c.cfg.MispredictPenalty != 2 {
			t.Errorf("%s: BTB/penalty wrong", c.cfg.Name)
		}
		if !c.perfect {
			if c.cfg.ICache.SizeBytes != 64<<10 || c.cfg.ICache.BlockSize != 64 ||
				c.cfg.DCache.MissCycles != 12 {
				t.Errorf("%s: cache parameters wrong", c.cfg.Name)
			}
			if c.cfg.ICache.Lines() != 1024 {
				t.Errorf("%s: lines %d", c.cfg.Name, c.cfg.ICache.Lines())
			}
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(ir.Add) != 1 || Latency(ir.Mov) != 1 {
		t.Error("single-cycle ALU")
	}
	if Latency(ir.Load) != 2 {
		t.Error("load hit latency is 2 (PA7100)")
	}
	if Latency(ir.Mul) != 2 || Latency(ir.AddF) != 2 {
		t.Error("multiply/FP-add latency is 2")
	}
	if Latency(ir.Div) < 8 || Latency(ir.DivF) < 8 {
		t.Error("divide is a long-latency operation")
	}
	if Latency(ir.PredDef) != 1 || Latency(ir.CMov) != 1 {
		t.Error("predicate ops are single cycle")
	}
}
