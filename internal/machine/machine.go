// Package machine describes target processor configurations: issue width,
// branch issue slots, operation latencies, branch prediction, and caches.
// The configurations mirror §4.1 of the paper: k-issue in-order processors
// with no restriction on the instruction mix except branches, HP PA-RISC
// 7100 instruction latencies, a 1K-entry BTB with 2-bit counters and a
// 2-cycle misprediction penalty, and either perfect caches or 64K
// direct-mapped instruction/data caches with 64-byte blocks and a 12-cycle
// miss penalty (write-through, no write-allocate).
package machine

import (
	"fmt"

	"predication/internal/ir"
)

// CacheConfig describes one direct-mapped cache.
type CacheConfig struct {
	SizeBytes  int
	BlockSize  int
	MissCycles int
}

// Lines returns the number of cache lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.BlockSize }

// Config is a complete processor configuration.
type Config struct {
	Name        string
	IssueWidth  int
	BranchSlots int

	// PerfectCache disables both cache models.
	PerfectCache bool
	ICache       CacheConfig
	DCache       CacheConfig

	BTBEntries        int
	MispredictPenalty int

	// TakenBranchBubble is the fetch redirect cost (in cycles) of a
	// correctly predicted taken branch.  The paper's BTB supplies the
	// target at fetch, so correctly predicted taken branches cost nothing
	// (only mispredictions pay the 2-cycle penalty); the field exists for
	// ablation studies of weaker front ends.
	TakenBranchBubble int

	// WritebackSuppression models the alternative suppression point
	// discussed in §2.1: when true, predicated instructions are nullified
	// in the write-back stage, so a predicate define and a dependent
	// predicated instruction may issue in the same cycle (0-cycle
	// define-to-use distance).  The paper's experiments use decode/issue
	// suppression (false), which requires a 1-cycle distance.
	WritebackSuppression bool

	// Gshare selects a global-history XOR predictor in place of the
	// paper's per-address BTB counters — a predictor-sensitivity
	// counterfactual: stronger prediction shrinks the baseline's
	// misprediction bill and with it part of predication's advantage.
	Gshare bool

	// PredicateDistance is the define-to-use distance in cycles for
	// decode/issue suppression.  The paper notes the distance "may be
	// larger for deeper pipelines or if bypass is not available for
	// predicate registers" (§2.1); 0 leaves the default of 1.
	PredicateDistance int

	// OoO selects the out-of-order issue-window scheduler instead of the
	// paper's in-order issue model: instructions dispatch in order into a
	// WindowSize-entry window, rename away WAW/WAR ordering, and issue
	// oldest-first as operands and issue slots allow.  Fetch and retire
	// stay in order.  See docs/SIMULATOR.md, "Out-of-order issue window".
	OoO bool

	// WindowSize is the instruction-window entry count for OoO
	// configurations (must be ≥ 1 when OoO is set, 0 otherwise).  A
	// window of 1 degenerates to the in-order model: dispatch waits for
	// the previous instruction to issue.
	WindowSize int
}

// Validate checks the constraints the simulators assume.  Geometry: BTB
// entry counts and cache line/block counts must be powers of two, because
// set selection is `index & (n-1)` — a non-power-of-two count would
// silently alias entries instead of failing.  Cache geometry is only
// checked when the caches are modeled (PerfectCache false).  Bandwidth:
// IssueWidth and BranchSlots must be at least 1 — a zero width would make
// the simulator's slot-allocation loop spin forever (slots reset to zero
// on every bumped cycle, so `slots < width` never becomes true).  Penalty
// fields must be non-negative, and the OoO window size must be consistent
// with the OoO flag.
func (c Config) Validate() error {
	if c.IssueWidth < 1 {
		return fmt.Errorf("machine %s: IssueWidth = %d, must be at least 1 (a zero-width machine can never issue)", c.Name, c.IssueWidth)
	}
	if c.BranchSlots < 1 {
		return fmt.Errorf("machine %s: BranchSlots = %d, must be at least 1 (a branch could never issue)", c.Name, c.BranchSlots)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("machine %s: MispredictPenalty = %d, must be non-negative", c.Name, c.MispredictPenalty)
	}
	if c.TakenBranchBubble < 0 {
		return fmt.Errorf("machine %s: TakenBranchBubble = %d, must be non-negative", c.Name, c.TakenBranchBubble)
	}
	if c.PredicateDistance < 0 {
		return fmt.Errorf("machine %s: PredicateDistance = %d, must be non-negative", c.Name, c.PredicateDistance)
	}
	if c.OoO {
		if c.WindowSize < 1 {
			return fmt.Errorf("machine %s: OoO set but WindowSize = %d, must be at least 1", c.Name, c.WindowSize)
		}
	} else if c.WindowSize != 0 {
		return fmt.Errorf("machine %s: WindowSize = %d without OoO (the in-order model has no instruction window)", c.Name, c.WindowSize)
	}
	if !powerOfTwo(c.BTBEntries) {
		return fmt.Errorf("machine %s: BTBEntries = %d, must be a power of two (BTB set index is masked)", c.Name, c.BTBEntries)
	}
	if !c.PerfectCache {
		if err := c.ICache.validate(c.Name, "ICache"); err != nil {
			return err
		}
		if err := c.DCache.validate(c.Name, "DCache"); err != nil {
			return err
		}
	}
	return nil
}

func (c CacheConfig) validate(machineName, which string) error {
	if c.MissCycles < 0 {
		return fmt.Errorf("machine %s: %s.MissCycles = %d, must be non-negative", machineName, which, c.MissCycles)
	}
	if !powerOfTwo(c.BlockSize) {
		return fmt.Errorf("machine %s: %s.BlockSize = %d, must be a power of two (block offset is a shift)", machineName, which, c.BlockSize)
	}
	if c.SizeBytes%c.BlockSize != 0 || !powerOfTwo(c.Lines()) {
		return fmt.Errorf("machine %s: %s geometry %dB/%dB gives %d lines, must be a power of two (line index is masked)", machineName, which, c.SizeBytes, c.BlockSize, c.Lines())
	}
	return nil
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// PredDist returns the effective predicate define-to-use distance.
func (c Config) PredDist() int {
	if c.WritebackSuppression {
		return 0
	}
	if c.PredicateDistance > 0 {
		return c.PredicateDistance
	}
	return 1
}

// default64K is the paper's cache: 64K direct mapped, 64-byte blocks,
// 12-cycle miss penalty.
var default64K = CacheConfig{SizeBytes: 64 << 10, BlockSize: 64, MissCycles: 12}

func base(name string, issue, branches int, perfect bool) Config {
	return Config{
		Name:              name,
		IssueWidth:        issue,
		BranchSlots:       branches,
		PerfectCache:      perfect,
		ICache:            default64K,
		DCache:            default64K,
		BTBEntries:        1024,
		MispredictPenalty: 2,
		TakenBranchBubble: 0,
	}
}

// Issue8Br1 is the 8-issue, 1-branch, perfect-cache processor (Figure 8).
func Issue8Br1() Config { return base("issue8-br1", 8, 1, true) }

// Issue8Br2 is the 8-issue, 2-branch, perfect-cache processor (Figure 9).
func Issue8Br2() Config { return base("issue8-br2", 8, 2, true) }

// Issue4Br1 is the 4-issue, 1-branch, perfect-cache processor (Figure 10).
func Issue4Br1() Config { return base("issue4-br1", 4, 1, true) }

// Issue8Br1Cache is the 8-issue, 1-branch processor with 64K instruction
// and data caches (Figure 11).
func Issue8Br1Cache() Config { return base("issue8-br1-64k", 8, 1, false) }

// Issue1 is the 1-issue baseline processor used as the speedup denominator.
func Issue1() Config { return base("issue1", 1, 1, true) }

// Issue1Cache is the 1-issue baseline with 64K caches (denominator for
// Figure 11).
func Issue1Cache() Config { return base("issue1-64k", 1, 1, false) }

// configs enumerates every named configuration constructor, in the
// reporting order of the paper's figures.
var configs = []func() Config{Issue1, Issue4Br1, Issue8Br1, Issue8Br2, Issue8Br1Cache, Issue1Cache}

// ByName returns the named configuration.  The names are the ones the
// CLI flags and the serving API accept: issue1, issue4-br1, issue8-br1,
// issue8-br2, issue8-br1-64k, issue1-64k.
func ByName(name string) (Config, error) {
	for _, mk := range configs {
		if c := mk(); c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("unknown machine %q (want one of %v)", name, Names())
}

// Names lists every named configuration.
func Names() []string {
	names := make([]string, len(configs))
	for i, mk := range configs {
		names[i] = mk().Name
	}
	return names
}

// Latency returns the issue-to-result latency in cycles of an opcode on the
// modeled HP PA-7100-like pipeline (load latency is the cache-hit case).
func Latency(op ir.Op) int {
	switch op {
	case ir.Mul:
		return 2
	case ir.Div, ir.Rem:
		return 8
	case ir.AddF, ir.SubF, ir.MulF, ir.AbsF, ir.CvtIF, ir.CvtFI:
		return 2
	case ir.DivF:
		return 8
	case ir.CmpEQF, ir.CmpNEF, ir.CmpLTF, ir.CmpLEF, ir.CmpGTF, ir.CmpGEF:
		return 2
	case ir.Load:
		return 2
	default:
		return 1
	}
}
