package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Request tracing (docs/OBSERVABILITY.md, "Request tracing & access
// logs"): the serving analogue of cycle accounting.  A Trace carries one
// request's identity (the X-Request-Id header value) and a tree of
// Spans, each a named stage of the request lifecycle timed against the
// monotonic clock.  The serving daemon exports a finished trace three
// ways — a Server-Timing response header, per-stage latency histograms
// in the Registry, and (for sampled or slow requests) the Chrome
// trace-event document rendered through TraceWriter — so a request's
// milliseconds are attributable the same way a simulated run's cycles
// are.
//
// A Trace is deliberately not synchronized: one request is handled by
// one goroutine at a time (the singleflight leader runs stage code on
// its own goroutine with its own trace; coalesced waiters record a
// single wait span instead of inheriting the leader's stages).

// Span is one timed stage of a request.  Child spans nest inside their
// parent; sibling spans are sequential.
type Span struct {
	// ID is unique within the trace, assigned in start order (the root
	// span is 0).
	ID int
	// Name is the stage name — a Server-Timing token: ASCII letters,
	// digits, '_' and '-' only.
	Name string
	// Offset is the span's start relative to the trace's start.
	Offset time.Duration
	// Dur is the span's duration; zero until the span has ended.
	Dur time.Duration
	// Children are the nested sub-stages, in start order.
	Children []*Span

	tr     *Trace
	parent *Span
	start  time.Time
	ended  bool
}

// Trace is one request's span tree plus its identity and annotations.
type Trace struct {
	// ID is the request ID: accepted from the X-Request-Id header when
	// syntactically valid, minted otherwise.
	ID string

	start  time.Time
	root   *Span
	open   []*Span // innermost open span last; open[0] is the root
	nextID int
	notes  map[string]string
}

// NewTrace starts a trace.  A syntactically valid id is adopted
// verbatim (propagation: a forwarded request keeps its identity across
// the hop); anything else — including the empty string — mints a fresh
// ID.
func NewTrace(id string) *Trace {
	if !ValidRequestID(id) {
		id = MintRequestID()
	}
	t := &Trace{ID: id, start: time.Now()}
	t.root = &Span{ID: 0, Name: "request", tr: t, start: t.start}
	t.nextID = 1
	t.open = []*Span{t.root}
	return t
}

// Start opens a new span named name as a child of the innermost open
// span and returns it; the caller ends it with End.
func (t *Trace) Start(name string) *Span {
	parent := t.open[len(t.open)-1]
	sp := &Span{
		ID:     t.nextID,
		Name:   name,
		Offset: time.Since(t.start),
		tr:     t,
		parent: parent,
		start:  time.Now(),
	}
	t.nextID++
	parent.Children = append(parent.Children, sp)
	t.open = append(t.open, sp)
	return sp
}

// End closes the span (and, defensively, any still-open descendants).
// Ending a span twice is a no-op.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	t := sp.tr
	for i := len(t.open) - 1; i > 0; i-- {
		s := t.open[i]
		t.open = t.open[:i]
		s.Dur = time.Since(s.start)
		s.ended = true
		if s == sp {
			return
		}
	}
}

// Add attaches an already-completed span (started at start, lasting
// dur) as a child of the innermost open span.  It is how a coalesced
// waiter records the time it spent blocked on the singleflight leader
// without inheriting the leader's stage spans.
func (t *Trace) Add(name string, start time.Time, dur time.Duration) *Span {
	parent := t.open[len(t.open)-1]
	sp := &Span{
		ID:     t.nextID,
		Name:   name,
		Offset: start.Sub(t.start),
		Dur:    dur,
		tr:     t,
		parent: parent,
		start:  start,
		ended:  true,
	}
	t.nextID++
	parent.Children = append(parent.Children, sp)
	return sp
}

// Finish ends every span still open, the root included.  It is
// idempotent.
func (t *Trace) Finish() {
	for i := len(t.open) - 1; i >= 0; i-- {
		if s := t.open[i]; !s.ended {
			s.Dur = time.Since(s.start)
			s.ended = true
		}
	}
	t.open = t.open[:1] // the root stays addressable for Wall/Stages reads
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

// Wall is the request's server-side wall time: the root span's duration
// once finished, or the time elapsed so far.
func (t *Trace) Wall() time.Duration {
	if t.root.ended {
		return t.root.Dur
	}
	return time.Since(t.start)
}

// Annotate attaches a key/value note to the trace (the submit path
// records its rejection layer this way; the access log carries notes
// through).
func (t *Trace) Annotate(k, v string) {
	if t.notes == nil {
		t.notes = map[string]string{}
	}
	t.notes[k] = v
}

// Annotation returns the note stored under k, or "".
func (t *Trace) Annotation(k string) string { return t.notes[k] }

// Walk visits every span depth-first in start order, the root at depth
// zero.
func (t *Trace) Walk(fn func(depth int, sp *Span)) {
	var rec func(depth int, sp *Span)
	rec = func(depth int, sp *Span) {
		fn(depth, sp)
		for _, c := range sp.Children {
			rec(depth+1, c)
		}
	}
	rec(0, t.root)
}

// Stage is one top-level stage's total duration.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages returns the root's direct children in first-start order,
// summing repeated names (the submit path compiles once per model under
// the same "compile" stage).  Top-level stages are sequential and
// non-overlapping by construction, so their durations sum to (almost)
// the request's wall time — the property the Server-Timing header
// exports.
func (t *Trace) Stages() []Stage {
	var order []string
	sums := map[string]time.Duration{}
	for _, c := range t.root.Children {
		if _, ok := sums[c.Name]; !ok {
			order = append(order, c.Name)
		}
		sums[c.Name] += c.Dur
	}
	stages := make([]Stage, len(order))
	for i, name := range order {
		stages[i] = Stage{Name: name, Dur: sums[name]}
	}
	return stages
}

// ServerTiming renders the top-level stages as a Server-Timing header
// value — `mem;dur=0.041, compute;dur=12.930, total;dur=13.002` — with
// durations in milliseconds and `total` the wall time so far (the
// header is stamped just before the response body, so `total` excludes
// only the final write).
func (t *Trace) ServerTiming() string {
	var sb strings.Builder
	for _, st := range t.Stages() {
		fmt.Fprintf(&sb, "%s;dur=%s, ", st.Name, formatMillis(st.Dur))
	}
	fmt.Fprintf(&sb, "total;dur=%s", formatMillis(t.Wall()))
	return sb.String()
}

// formatMillis renders a duration as decimal milliseconds with
// microsecond resolution and no trailing zeros.
func formatMillis(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', -1, 64)
}

// ParseServerTiming parses a Server-Timing header value back into
// per-stage millisecond durations.  Entries without a dur parameter are
// skipped; repeated names keep the last value.  It is the client half
// of the round-trip (cmd/predload aggregates per-stage medians with
// it).
func ParseServerTiming(h string) map[string]float64 {
	if h == "" {
		return nil
	}
	out := map[string]float64{}
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			continue
		}
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "dur") {
				continue
			}
			if ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				out[name] = ms
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteChrome renders the span tree as Chrome trace-event records into
// tw (one complete "X" event per span, all on thread 0, timestamps in
// microseconds from the trace's start).  Nested spans nest in the
// rendered timeline because their intervals nest.
func (t *Trace) WriteChrome(tw *TraceWriter) {
	t.Walk(func(depth int, sp *Span) {
		tw.Complete(sp.Name, 0, sp.Offset.Microseconds(), sp.Dur.Microseconds(),
			map[string]int64{"span_id": int64(sp.ID)})
	})
}

// ChromeBreakdown overlays a simulator cycle breakdown onto the request
// timeline: each nonzero cause becomes one event on thread 1, laid out
// sequentially across [start, start+dur] with width proportional to its
// cycle share, the actual cycle count in args.  Rendered inside the
// request's measure span, the simulator's cycle account and the serving
// stages read as one timeline.
func ChromeBreakdown(tw *TraceWriter, b *Breakdown, start, dur time.Duration) {
	total := b.Total()
	if total <= 0 || dur <= 0 {
		return
	}
	ts := start.Microseconds()
	end := (start + dur).Microseconds()
	for c, v := range b {
		if v == 0 {
			continue
		}
		w := dur.Microseconds() * v / total
		if ts+w > end {
			w = end - ts
		}
		tw.Complete("sim:"+Cause(c).String(), 1, ts, w, map[string]int64{"cycles": v})
		ts += w
	}
}

// traceCtxKey keys the request trace in a context.
type traceCtxKey struct{}

// WithTrace attaches tr to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// MintRequestID returns a fresh 32-hex-character request ID.
func MintRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; degrade to a constant that
		// is still a valid ID rather than panicking a serving daemon.
		return "00000000deadbeef00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether s is acceptable as a propagated
// request ID: 8–64 characters of ASCII letters, digits, '.', '_' and
// '-', not starting with '.' or '-'.  The character set keeps IDs safe
// as log fields, header values, and trace file names.
func ValidRequestID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	if s[0] == '.' || s[0] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Complete writes one complete ("ph":"X") trace event with an explicit
// thread, microsecond timestamp, duration, and numeric args — the
// generic sibling of the per-instruction Event records, used to render
// request span trees into the same document format.  Args are emitted
// in sorted key order so the output is deterministic.
func (t *TraceWriter) Complete(name string, tid int, ts, dur int64, args map[string]int64) {
	if t.err != nil {
		return
	}
	var sb strings.Builder
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%q:%d", k, args[k])
	}
	var err error
	switch t.format {
	case FormatChrome:
		comma := ","
		if t.emitted == 0 {
			comma = ""
		}
		_, err = fmt.Fprintf(t.w,
			`%s{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{%s}}`,
			comma, name, ts, dur, tid, sb.String())
	case FormatJSONL:
		_, err = fmt.Fprintf(t.w,
			"{\"name\":%q,\"ts\":%d,\"dur\":%d,\"tid\":%d,\"args\":{%s}}\n",
			name, ts, dur, tid, sb.String())
	}
	if err != nil && t.err == nil {
		t.err = err
	}
	t.emitted++
}
