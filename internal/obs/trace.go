package obs

import (
	"bufio"
	"fmt"
	"io"

	"predication/internal/emu"
)

// TraceFormat selects the structured trace encoding.
type TraceFormat string

// Supported trace encodings.
const (
	// FormatChrome is the Chrome trace-event JSON format: one complete
	// ("ph":"X") event per sampled dynamic instruction, loadable in
	// chrome://tracing and Perfetto.  The timeline unit is one emulated
	// step.
	FormatChrome TraceFormat = "chrome"
	// FormatJSONL is one self-contained JSON object per line per sampled
	// dynamic instruction, for jq/scripting pipelines.
	FormatJSONL TraceFormat = "jsonl"
)

// TraceOptions configures a TraceWriter.
type TraceOptions struct {
	// Format selects the encoding (default FormatChrome).
	Format TraceFormat
	// Sample keeps one of every Sample events (default 1 = every event).
	// Sampling is positional over the dynamic stream, so a run's trace is
	// deterministic.
	Sample int64
	// Limit stops emission after this many records (0 = unlimited).  The
	// sink keeps counting steps so record timestamps stay absolute.
	Limit int64
}

// TraceWriter renders the dynamic instruction stream as a structured
// trace.  It implements emu.TraceSink and emu.BatchSink, so it can ride
// the same fanout as the timing simulator; it is only ever constructed
// when tracing is requested (-trace-out), leaving the zero-allocation
// emulation path untouched otherwise.  Callers must Close it to flush
// buffers and terminate the JSON document.
type TraceWriter struct {
	w       *bufio.Writer
	format  TraceFormat
	sample  int64
	limit   int64
	step    int64 // dynamic instructions seen
	emitted int64 // records written
	err     error
	closed  bool
}

// NewTraceWriter creates a trace sink writing to w.
func NewTraceWriter(w io.Writer, opt TraceOptions) (*TraceWriter, error) {
	if opt.Format == "" {
		opt.Format = FormatChrome
	}
	if opt.Format != FormatChrome && opt.Format != FormatJSONL {
		return nil, fmt.Errorf("obs: unknown trace format %q (want %q or %q)", opt.Format, FormatChrome, FormatJSONL)
	}
	if opt.Sample <= 0 {
		opt.Sample = 1
	}
	t := &TraceWriter{
		w:      bufio.NewWriterSize(w, 1<<16),
		format: opt.Format,
		sample: opt.Sample,
		limit:  opt.Limit,
	}
	if t.format == FormatChrome {
		_, t.err = t.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	}
	return t, nil
}

// Event implements emu.TraceSink.
func (t *TraceWriter) Event(ev emu.Event) {
	step := t.step
	t.step++
	if t.err != nil || step%t.sample != 0 || (t.limit > 0 && t.emitted >= t.limit) {
		return
	}
	t.emit(step, ev)
}

// EventBatch implements emu.BatchSink: the fast interpreter delivers its
// buffered event runs here.
func (t *TraceWriter) EventBatch(evs []emu.Event) {
	for i := range evs {
		t.Event(evs[i])
	}
}

// emit writes one record.  Opcode mnemonics contain no characters needing
// JSON escaping, so records are formatted directly.
func (t *TraceWriter) emit(step int64, ev emu.Event) {
	null, taken := 0, 0
	if ev.Nullified() {
		null = 1
	}
	if ev.Taken() {
		taken = 1
	}
	var err error
	switch t.format {
	case FormatChrome:
		comma := ","
		if t.emitted == 0 {
			comma = ""
		}
		_, err = fmt.Fprintf(t.w,
			`%s{"name":%q,"ph":"X","ts":%d,"dur":1,"pid":0,"tid":0,"args":{"id":%d,"pc":%d,"nullified":%d,"taken":%d,"addr":%d}}`,
			comma, ev.In.Op.String(), step, ev.ID, ev.In.Addr, null, taken, ev.Addr)
	case FormatJSONL:
		_, err = fmt.Fprintf(t.w,
			"{\"step\":%d,\"id\":%d,\"op\":%q,\"pc\":%d,\"nullified\":%d,\"taken\":%d,\"addr\":%d}\n",
			step, ev.ID, ev.In.Op.String(), ev.In.Addr, null, taken, ev.Addr)
	}
	if err != nil && t.err == nil {
		t.err = err
	}
	t.emitted++
}

// Steps returns the number of dynamic instructions seen.
func (t *TraceWriter) Steps() int64 { return t.step }

// Emitted returns the number of records written.
func (t *TraceWriter) Emitted() int64 { return t.emitted }

// Close terminates the document and flushes buffered output.  It reports
// the first error encountered at any point of the trace's life.
func (t *TraceWriter) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.format == FormatChrome {
		if _, err := t.w.WriteString("]}\n"); err != nil && t.err == nil {
			t.err = err
		}
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
