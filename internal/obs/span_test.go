package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpanInvariants: the structural guarantees every exporter
// relies on — unique IDs assigned in start order, children nested
// within their parent's window, child durations bounded by the
// parent's, and the root covering everything.
func TestTraceSpanInvariants(t *testing.T) {
	tr := NewTrace("")
	outer := tr.Start("outer")
	inner := tr.Start("inner")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	tr.Start("tail").End()
	tr.Finish()

	seen := map[int]bool{}
	tr.Walk(func(depth int, sp *Span) {
		if seen[sp.ID] {
			t.Errorf("span ID %d appears twice", sp.ID)
		}
		seen[sp.ID] = true
		if !sp.ended {
			t.Errorf("span %q not ended after Finish", sp.Name)
		}
		if sp.Dur < 0 || sp.Offset < 0 {
			t.Errorf("span %q: negative timing: offset=%v dur=%v", sp.Name, sp.Offset, sp.Dur)
		}
		for _, c := range sp.Children {
			if c.Offset < sp.Offset {
				t.Errorf("child %q starts (%v) before parent %q (%v)", c.Name, c.Offset, sp.Name, sp.Offset)
			}
			if c.Dur > sp.Dur {
				t.Errorf("child %q duration %v exceeds parent %q duration %v", c.Name, c.Dur, sp.Name, sp.Dur)
			}
			if c.Offset+c.Dur > sp.Offset+sp.Dur {
				t.Errorf("child %q ends after parent %q", c.Name, sp.Name)
			}
		}
	})
	if len(seen) != 4 {
		t.Errorf("walked %d spans, want 4 (root, outer, inner, tail)", len(seen))
	}
	if root := tr.Root(); root.ID != 0 || root.Name != "request" || root.Dur != tr.Wall() {
		t.Errorf("root = {id=%d name=%q dur=%v}, wall %v", root.ID, root.Name, root.Dur, tr.Wall())
	}
	if got := len(tr.Root().Children); got != 2 {
		t.Errorf("root has %d direct children, want 2 (outer, tail)", got)
	}
	// Finish is idempotent: a second call must not extend any span.
	rootDur := tr.Root().Dur
	time.Sleep(time.Millisecond)
	tr.Finish()
	if tr.Root().Dur != rootDur {
		t.Error("second Finish extended the root span")
	}
}

// TestTraceIDPropagation: the round-trip rule — a syntactically valid
// incoming ID is adopted verbatim (the shard hop keeps one identity),
// anything else mints a fresh valid one.
func TestTraceIDPropagation(t *testing.T) {
	if tr := NewTrace("client-id_42.a"); tr.ID != "client-id_42.a" {
		t.Errorf("valid ID not adopted: %q", tr.ID)
	}
	for _, bad := range []string{"", "short", "-leading-dash", ".leading-dot",
		"has space in it", "semi;colon-value", strings.Repeat("x", 65)} {
		tr := NewTrace(bad)
		if tr.ID == bad {
			t.Errorf("invalid ID %q adopted verbatim", bad)
		}
		if !ValidRequestID(tr.ID) {
			t.Errorf("minted ID %q is not itself valid", tr.ID)
		}
	}
	a, b := MintRequestID(), MintRequestID()
	if a == b {
		t.Error("two minted IDs collide")
	}
	if !ValidRequestID(a) || len(a) != 32 {
		t.Errorf("minted ID %q: want 32 valid characters", a)
	}
}

// TestServerTimingRoundTrip: Stages → header → ParseServerTiming
// preserves every stage name and millisecond duration, sums repeated
// stage names, and always carries the total.
func TestServerTimingRoundTrip(t *testing.T) {
	tr := NewTrace("")
	now := time.Now()
	tr.Add("compile", now, 1500*time.Microsecond)
	tr.Add("measure", now, 40*time.Millisecond)
	tr.Add("compile", now, 500*time.Microsecond) // repeated name sums
	time.Sleep(time.Millisecond)                 // give the root span a measurable wall
	tr.Finish()

	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "compile" || stages[1].Name != "measure" {
		t.Fatalf("stages = %+v, want compile then measure in first-start order", stages)
	}
	if stages[0].Dur != 2*time.Millisecond {
		t.Errorf("compile stage = %v, want summed 2ms", stages[0].Dur)
	}

	h := tr.ServerTiming()
	parsed := ParseServerTiming(h)
	if parsed["compile"] != 2 || parsed["measure"] != 40 {
		t.Errorf("round-trip of %q = %v", h, parsed)
	}
	if total, ok := parsed["total"]; !ok || total <= 0 {
		t.Errorf("header %q: missing positive total", h)
	}
	if ParseServerTiming("") != nil {
		t.Error("empty header should parse to nil")
	}
	if got := ParseServerTiming("a;dur=1.5, b, c;other=2"); len(got) != 1 || got["a"] != 1.5 {
		t.Errorf("entries without dur should be skipped: %v", got)
	}
}

// TestWriteChromeAndBreakdown: a trace renders as a loadable Chrome
// trace-event document — spans on thread 0 with their IDs, the cycle
// breakdown overlay on thread 1 with widths proportional to cycle
// shares and the actual counts in args.
func TestWriteChromeAndBreakdown(t *testing.T) {
	tr := NewTrace("")
	now := time.Now()
	tr.Add("measure", now, 10*time.Millisecond)
	tr.Finish()

	var b Breakdown
	b[CauseIssued] = 3000
	b[CauseICache] = 1000

	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, TraceOptions{Format: FormatChrome})
	if err != nil {
		t.Fatal(err)
	}
	tr.WriteChrome(tw)
	ChromeBreakdown(tw, &b, 0, 10*time.Millisecond)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			Tid  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome document does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	var simDur, simCycles int64
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Ph != "X" {
			t.Errorf("event %q: ph=%q, want X", ev.Name, ev.Ph)
		}
		if strings.HasPrefix(ev.Name, "sim:") {
			if ev.Tid != 1 {
				t.Errorf("breakdown event %q on tid %d, want 1", ev.Name, ev.Tid)
			}
			simDur += ev.Dur
			simCycles += ev.Args["cycles"]
		} else if ev.Tid != 0 {
			t.Errorf("span event %q on tid %d, want 0", ev.Name, ev.Tid)
		}
	}
	if byName["request"] != 1 || byName["measure"] != 1 {
		t.Errorf("span events missing: %v", byName)
	}
	if byName["sim:issue"] != 1 || byName["sim:icache_miss"] != 1 || simCycles != 4000 {
		t.Errorf("breakdown overlay = %v with %d cycles, want sim:issue, sim:icache_miss, 4000", byName, simCycles)
	}
	if simDur > 10*time.Millisecond.Microseconds() {
		t.Errorf("overlay spans %dus, wider than the 10ms window", simDur)
	}
}

// TestAccessLogger: one JSON object per line with the documented field
// names; a nil logger accepts records and drops them.
func TestAccessLogger(t *testing.T) {
	var nilLogger *AccessLogger
	if nilLogger.Enabled() {
		t.Error("nil logger claims enabled")
	}
	if err := nilLogger.Log(AccessRecord{}); err != nil {
		t.Errorf("nil logger errored: %v", err)
	}

	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	rec := AccessRecord{
		RequestID:   "req-12345678",
		Method:      "GET",
		Path:        "/v1/cell",
		Status:      200,
		Bytes:       512,
		DurationMS:  1.25,
		Cache:       "hit",
		RejectLayer: "",
		StagesMS:    map[string]float64{"mem": 0.05},
	}
	if err := l.Log(rec); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("record is not one line: %q", line)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("line does not parse: %v", err)
	}
	if got["request_id"] != "req-12345678" || got["cache"] != "hit" {
		t.Errorf("fields lost: %v", got)
	}
	if _, ok := got["reject_layer"]; ok {
		t.Error("empty reject_layer should be omitted")
	}
	if _, ok := got["time"]; !ok {
		t.Error("time not stamped")
	}
	if stages, ok := got["stages_ms"].(map[string]any); !ok || stages["mem"] != 0.05 {
		t.Errorf("stages_ms = %v", got["stages_ms"])
	}

	// Concurrent logging keeps lines whole.
	buf.Reset()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Log(AccessRecord{RequestID: "concurrent-1", Method: "GET"})
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("got %d lines, want 16", len(lines))
	}
	for _, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &got); err != nil {
			t.Errorf("interleaved line %q: %v", ln, err)
		}
	}
}
