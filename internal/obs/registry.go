package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically named total, safe for concurrent use (the
// experiment harness updates counters from its worker pool).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution.  Bounds are inclusive upper
// bucket edges; one implicit overflow bucket catches everything above the
// last bound.  Bounds and values are float64 so one bucket ladder spans
// sub-millisecond cache hits and multi-second computes (LatencyBucketsMS);
// integer-valued histograms (step counts) lose nothing below 2^53.  Safe
// for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last = overflow
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
}

// ObserveDuration records a duration in milliseconds — the unit every
// latency histogram in the serving stack shares.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Microseconds()) / 1000)
}

// LatencyBucketsMS is the shared latency bucket ladder, in milliseconds:
// sub-millisecond (a warm in-memory cache hit) up to ten seconds (a cold
// full-matrix compute), roughly logarithmic.  Every serving-path latency
// histogram uses it so percentiles are comparable across stages.
var LatencyBucketsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000,
}

// HistogramSnapshot is a histogram's JSON form: parallel "le"/"counts"
// arrays (counts has one extra overflow entry) plus the observation count
// and sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"le"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Registry is a named collection of counters and histograms.  Metrics are
// created on first use and identified by name; Snapshot renders the whole
// registry with a stable JSON schema (object keys sort lexically).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.  A name
// already registered as a histogram panics: one name, one metric kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bucket bounds (which must be ascending) on first use.
// Later calls ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
	}
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is the registry's JSON form.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

// MarshalJSON renders a snapshot of the registry (encoding/json sorts map
// keys, so the output is deterministic for a given state).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
