package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessRecord is one request's structured access-log line: identity,
// route, outcome, attribution.  The schema is documented in
// docs/OBSERVABILITY.md ("Request tracing & access logs") and validated
// by the CI serve smoke stage; keep the two in sync.
type AccessRecord struct {
	// Time is the completion time, RFC 3339 with nanoseconds.
	Time string `json:"time"`
	// RequestID is the request's X-Request-Id — the join key against
	// response headers, peer logs, and trace files.
	RequestID string `json:"request_id"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Query     string `json:"query,omitempty"`
	Status    int    `json:"status"`
	// Bytes is the response body size actually written.
	Bytes int64 `json:"bytes"`
	// DurationMS is the server-side wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Client is the remote address (host only).
	Client string `json:"client,omitempty"`
	// Cache and Shard mirror the X-Cache and X-Shard response headers.
	Cache string `json:"cache,omitempty"`
	Shard string `json:"shard,omitempty"`
	// RejectLayer is the admission layer that refused a submission
	// (submit.Reject's taxonomy plus the serve-local rate/queue layers).
	RejectLayer string `json:"reject_layer,omitempty"`
	// StagesMS attributes the request's time to its lifecycle stages —
	// the Server-Timing header's content, as numbers.
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// AccessLogger writes one JSON object per line per request, safe for
// concurrent use.  A nil logger is valid and drops everything, so call
// sites need no guards — the hot path costs one nil check when access
// logging is off.
type AccessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewAccessLogger creates a logger writing to w; a nil w yields a nil
// logger (logging off).
func NewAccessLogger(w io.Writer) *AccessLogger {
	if w == nil {
		return nil
	}
	return &AccessLogger{w: w}
}

// Enabled reports whether records will actually be written.
func (l *AccessLogger) Enabled() bool { return l != nil }

// Log writes one record as a single JSON line.  Marshalling cannot fail
// for AccessRecord's field types; write errors are reported so the
// caller can count them (the daemon's log is an observer, never a
// dependency — it must not turn requests into failures).
func (l *AccessLogger) Log(rec AccessRecord) error {
	if l == nil {
		return nil
	}
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(b)
	return err
}

// RoundMS converts a duration to milliseconds with microsecond
// resolution — the unit access records and Server-Timing entries share.
func RoundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
