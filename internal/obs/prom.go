package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promFloat renders a float bound or sum in plain decimal notation —
// integer-valued floats print without a fractional part (le="1000", as
// before histograms went float64), fractional bounds print exactly
// (le="0.05"), never in exponent form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// WritePrometheus renders a snapshot of the registry in the Prometheus
// text exposition format (version 0.0.4): every counter becomes a
// `counter` metric and every histogram a cumulative `histogram` metric
// with `_bucket`/`_sum`/`_count` series and a closing `+Inf` bucket.
// Metric names are emitted in sorted order, so the output for a given
// registry state is deterministic.  The serving daemon's /metrics
// endpoint is this function behind an HTTP handler; the JSON schema of
// Snapshot is unchanged and remains the format embedded in reports.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		// The snapshot's counts are per-bucket; Prometheus buckets are
		// cumulative and end with the mandatory +Inf catch-all.
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
