package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Cause indexes the cycle-accounting categories.  Every cycle of a
// simulated run is attributed to exactly one cause: unconstrained issue
// (CauseIssued), bandwidth saturation (the cycle issued instructions but
// turned another away — CauseIssueWidth/CauseBranchLimit, which by
// construction never empty a cycle), or an empty stall charged to the
// constraint that blocked the next instruction.
type Cause uint8

// Cycle-accounting categories in stable reporting order.
const (
	// CauseIssued counts cycles in which instructions issued and none was
	// turned away.
	CauseIssued Cause = iota
	// CauseIssueWidth: the cycle issued a full issue-width of instructions
	// and deferred at least one more.
	CauseIssueWidth
	// CauseBranchLimit: the branch-issue-bandwidth limit deferred a branch
	// into this cycle.
	CauseBranchLimit
	// CauseRegInterlock: a source register was not ready (producer latency,
	// excluding any data-cache miss share).
	CauseRegInterlock
	// CausePredInterlock: the guard predicate was not ready (the predicate
	// define-to-use distance the paper's §2.1 analyzes).
	CausePredInterlock
	// CauseMispredict: the fetch redirect after a branch misprediction.
	CauseMispredict
	// CauseTakenRedirect: the configured taken-branch bubble of a correctly
	// predicted taken branch (0 on the paper's BTB front end).
	CauseTakenRedirect
	// CauseICache: instruction-cache miss cycles blocking fetch.
	CauseICache
	// CauseDCache: data-cache miss share of a load consumer's wait.
	CauseDCache
	// CauseWindowFull: the out-of-order instruction window had no free
	// entry — dispatch waited for the oldest in-flight instruction to
	// issue (in-order runs never report this cause).
	CauseWindowFull
	// CauseRenameStall: the in-order rename/dispatch stage was at its
	// per-cycle bandwidth limit (out-of-order runs only; the in-order
	// model has no separate dispatch stage).
	CauseRenameStall

	// NumCauses is the number of accounting categories.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseIssued:        "issue",
	CauseIssueWidth:    "issue_width",
	CauseBranchLimit:   "branch_limit",
	CauseRegInterlock:  "reg_interlock",
	CausePredInterlock: "pred_interlock",
	CauseMispredict:    "mispredict",
	CauseTakenRedirect: "taken_redirect",
	CauseICache:        "icache_miss",
	CauseDCache:        "dcache_miss",
	CauseWindowFull:    "window_full",
	CauseRenameStall:   "rename_stall",
}

// String returns the category name used in reports and JSON output.
func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "unknown"
}

// CauseNames lists the category names in reporting order.
func CauseNames() []string {
	names := make([]string, NumCauses)
	for i := range names {
		names[i] = Cause(i).String()
	}
	return names
}

// Breakdown is the per-cause cycle decomposition of one simulated run,
// indexed by Cause.  Its invariant — checked by Verify and enforced by the
// experiment harness — is that the categories sum exactly to the run's
// total cycle count: every cycle is attributed to exactly one cause.
type Breakdown [NumCauses]int64

// Total sums every category; on a consistent account it equals the run's
// Stats.Cycles.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Stalls sums the stall categories (everything but CauseIssued).
func (b *Breakdown) Stalls() int64 { return b.Total() - b[CauseIssued] }

// Add accumulates another breakdown into b (suite-level aggregation).
func (b *Breakdown) Add(o *Breakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// Verify checks the accounting invariant against the run's cycle count.
func (b *Breakdown) Verify(cycles int64) error {
	if t := b.Total(); t != cycles {
		return fmt.Errorf("obs: cycle accounting broken: breakdown sums to %d, run took %d cycles (%s)",
			t, cycles, b)
	}
	for c, v := range b {
		if v < 0 {
			return fmt.Errorf("obs: cycle accounting broken: negative %s count %d", Cause(c), v)
		}
	}
	return nil
}

// String renders the nonzero categories compactly.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for c, v := range b {
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%d", Cause(c), v)
	}
	if sb.Len() == 0 {
		return "empty"
	}
	return sb.String()
}

// MarshalJSON renders the breakdown as an object keyed by category name
// plus a "total" field, the schema validated by the CI smoke stage.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, NumCauses+1)
	for c, v := range b {
		m[Cause(c).String()] = v
	}
	m["total"] = b.Total()
	return json.Marshal(m)
}

// UnmarshalJSON accepts the MarshalJSON schema (unknown keys, including
// "total", are ignored; the caller re-verifies the invariant).
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for c := Cause(0); c < NumCauses; c++ {
		b[c] = m[c.String()]
	}
	return nil
}

// MixEntry is one instruction class's dynamic population.
type MixEntry struct {
	Class     string `json:"class"`
	Fetched   int64  `json:"fetched"`
	Nullified int64  `json:"nullified"`
}

// CycleAccount collects everything the instrumented simulator attributes
// per run: the cycle breakdown plus the fetched and nullified dynamic
// instruction counts per opcode class.  Attach one to a simulator with
// sim.(*Simulator).Instrument before feeding events.
type CycleAccount struct {
	Breakdown Breakdown
	// Fetched counts dynamic instructions per class, including nullified
	// ones (they occupy fetch and issue bandwidth).
	Fetched [NumClasses]int64
	// Nullified counts the guard-suppressed subset per class.
	Nullified [NumClasses]int64
}

// Add accumulates another account into a (suite-level aggregation).
func (a *CycleAccount) Add(o *CycleAccount) {
	a.Breakdown.Add(&o.Breakdown)
	for i, v := range o.Fetched {
		a.Fetched[i] += v
	}
	for i, v := range o.Nullified {
		a.Nullified[i] += v
	}
}

// MarshalJSON renders the account as its breakdown plus the instruction
// mix, the stable schema embedded in predbench reports.
func (a *CycleAccount) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Breakdown Breakdown  `json:"breakdown"`
		Mix       []MixEntry `json:"mix"`
	}{a.Breakdown, a.Mix()})
}

// Mix returns the instruction-mix histogram in class order, dropping
// classes that never occurred.
func (a *CycleAccount) Mix() []MixEntry {
	var mix []MixEntry
	for c := InstrClass(0); c < NumClasses; c++ {
		if a.Fetched[c] == 0 && a.Nullified[c] == 0 {
			continue
		}
		mix = append(mix, MixEntry{Class: c.String(), Fetched: a.Fetched[c], Nullified: a.Nullified[c]})
	}
	return mix
}

// Verify checks the account against the run's aggregate statistics: the
// breakdown must sum to the cycle count, and the mix histograms must sum
// to the fetched and nullified instruction totals.
func (a *CycleAccount) Verify(cycles, instrs, nullified int64) error {
	if err := a.Breakdown.Verify(cycles); err != nil {
		return err
	}
	var f, n int64
	for c := InstrClass(0); c < NumClasses; c++ {
		f += a.Fetched[c]
		n += a.Nullified[c]
	}
	if f != instrs {
		return fmt.Errorf("obs: instruction mix broken: classes sum to %d fetched, run fetched %d", f, instrs)
	}
	if n != nullified {
		return fmt.Errorf("obs: nullification histogram broken: classes sum to %d, run nullified %d", n, nullified)
	}
	return nil
}
