package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"predication/internal/builder"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
)

func TestClassOf(t *testing.T) {
	cases := map[ir.Op]InstrClass{
		ir.Nop: ClassNop, ir.Halt: ClassNop,
		ir.Mov: ClassIALU, ir.Add: ClassIALU, ir.Shr: ClassIALU, ir.CmpLE: ClassIALU,
		ir.Mul: ClassMulDiv, ir.Div: ClassMulDiv, ir.Rem: ClassMulDiv,
		ir.AddF: ClassFALU, ir.DivF: ClassFALU, ir.CmpGEF: ClassFALU, ir.CvtFI: ClassFALU,
		ir.Load: ClassLoad, ir.Store: ClassStore,
		ir.BrEQ: ClassCondBranch, ir.BrGE: ClassCondBranch,
		ir.Jump: ClassJump, ir.JSR: ClassJump, ir.Ret: ClassJump,
		ir.PredDef: ClassPredDef, ir.PredClear: ClassPredDef, ir.PredSet: ClassPredDef,
		ir.CMov: ClassCMov, ir.CMovCom: ClassCMov, ir.Select: ClassCMov,
		ir.GuardApply: ClassGuard,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
	seen := map[string]bool{}
	for c := InstrClass(0); c < NumClasses; c++ {
		name := c.String()
		if name == "unknown" || seen[name] {
			t.Errorf("class %d has bad or duplicate name %q", c, name)
		}
		seen[name] = true
	}
}

func TestBreakdownInvariantAndJSON(t *testing.T) {
	var b Breakdown
	b[CauseIssued] = 10
	b[CauseMispredict] = 4
	b[CauseRegInterlock] = 6
	if b.Total() != 20 || b.Stalls() != 10 {
		t.Fatalf("total %d stalls %d", b.Total(), b.Stalls())
	}
	if err := b.Verify(20); err != nil {
		t.Errorf("Verify(20): %v", err)
	}
	if err := b.Verify(21); err == nil {
		t.Error("Verify(21) should fail")
	}

	js, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(js, &m); err != nil {
		t.Fatal(err)
	}
	if m["total"] != 20 || m["mispredict"] != 4 || m["issue"] != 10 {
		t.Errorf("JSON schema wrong: %s", js)
	}
	for _, name := range CauseNames() {
		if _, ok := m[name]; !ok {
			t.Errorf("JSON missing category %q", name)
		}
	}
	var back Breakdown
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Errorf("roundtrip mismatch: %v != %v", back, b)
	}
}

func TestCycleAccountVerifyAndMix(t *testing.T) {
	var a CycleAccount
	a.Breakdown[CauseIssued] = 5
	a.Fetched[ClassIALU] = 7
	a.Fetched[ClassPredDef] = 3
	a.Nullified[ClassIALU] = 2
	if err := a.Verify(5, 10, 2); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if err := a.Verify(5, 11, 2); err == nil {
		t.Error("fetched mismatch should fail")
	}
	if err := a.Verify(5, 10, 3); err == nil {
		t.Error("nullified mismatch should fail")
	}
	mix := a.Mix()
	if len(mix) != 2 || mix[0].Class != "ialu" || mix[0].Nullified != 2 || mix[1].Class != "pred_define" {
		t.Errorf("mix %+v", mix)
	}

	var sum CycleAccount
	sum.Add(&a)
	sum.Add(&a)
	if sum.Breakdown[CauseIssued] != 10 || sum.Fetched[ClassIALU] != 14 || sum.Nullified[ClassIALU] != 4 {
		t.Errorf("Add: %+v", sum)
	}
}

// traceProgram builds a tiny program and returns it with its dynamic step
// count.
func traceProgram(t *testing.T) (*ir.Program, int64) {
	t.Helper()
	p := builder.New(64)
	f := p.Func("main")
	b := f.Entry()
	for i := 0; i < 9; i++ {
		b.I(ir.Add, f.Reg(), int64(i), 1)
	}
	b.Halt()
	prog := p.Program()
	prog.AssignAddresses()
	res, err := emu.Run(prog, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, res.Steps
}

func TestTraceWriterChrome(t *testing.T) {
	prog, steps := traceProgram(t)
	var sb strings.Builder
	tw, err := NewTraceWriter(&sb, TraceOptions{Format: FormatChrome})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emu.Run(prog, emu.Options{Sink: tw}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Args struct {
				PC int64 `json:"pc"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if int64(len(doc.TraceEvents)) != steps || tw.Emitted() != steps || tw.Steps() != steps {
		t.Fatalf("emitted %d records for %d steps", len(doc.TraceEvents), steps)
	}
	if doc.TraceEvents[0].Name != "add" || doc.TraceEvents[0].Ph != "X" {
		t.Errorf("first record %+v", doc.TraceEvents[0])
	}
	if last := doc.TraceEvents[len(doc.TraceEvents)-1]; last.Name != "halt" || last.Ts != steps-1 {
		t.Errorf("last record %+v", last)
	}
}

func TestTraceWriterJSONLSamplingAndLimit(t *testing.T) {
	prog, steps := traceProgram(t) // 10 steps: 9 adds + halt
	var sb strings.Builder
	tw, err := NewTraceWriter(&sb, TraceOptions{Format: FormatJSONL, Sample: 3, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emu.Run(prog, emu.Options{Sink: tw}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sample=3 limit=3 over %d steps: %d lines, want 3\n%s", steps, len(lines), sb.String())
	}
	for i, line := range lines {
		var rec struct {
			Step int64  `json:"step"`
			Op   string `json:"op"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if rec.Step != int64(i*3) {
			t.Errorf("line %d samples step %d, want %d", i, rec.Step, i*3)
		}
	}
	if tw.Steps() != steps {
		t.Errorf("step counting must continue past the limit: %d != %d", tw.Steps(), steps)
	}
}

func TestTraceWriterRejectsUnknownFormat(t *testing.T) {
	if _, err := NewTraceWriter(&strings.Builder{}, TraceOptions{Format: "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("cells_ok").Add(5)
	r.Counter("cells_ok").Inc()
	r.Counter("cells_failed")
	h := r.Histogram("cell_cycles", []float64{10, 100, 1000})
	for _, v := range []float64{3, 50, 5000, 7} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if snap.Counters["cells_ok"] != 6 || snap.Counters["cells_failed"] != 0 {
		t.Errorf("counters %+v", snap.Counters)
	}
	hs := snap.Histograms["cell_cycles"]
	if hs.Count != 4 || hs.Sum != 5060 {
		t.Errorf("histogram %+v", hs)
	}
	if want := []int64{2, 1, 0, 1}; len(hs.Counts) != 4 ||
		hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] || hs.Counts[3] != want[3] {
		t.Errorf("bucket counts %v, want %v", hs.Counts, want)
	}

	js1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	js2, _ := json.Marshal(r)
	if string(js1) != string(js2) {
		t.Error("registry JSON not deterministic")
	}
	if !strings.Contains(string(js1), `"counters"`) || !strings.Contains(string(js1), `"histograms"`) {
		t.Errorf("schema missing sections: %s", js1)
	}

	defer func() {
		if recover() == nil {
			t.Error("kind conflict should panic")
		}
	}()
	r.Histogram("cells_ok", []float64{1})
}

func TestSnapshotIRAndPipelineTrace(t *testing.T) {
	p := builder.New(64)
	f := p.Func("main")
	b := f.Entry()
	sink := f.Block("sink")
	r := f.Reg()
	b.Mov(r, 1)
	pr := f.F.NewPReg()
	b.B.Append(ir.NewPredDef(ir.EQ, ir.PredDest{P: pr, Type: ir.PredU},
		ir.PredDest{}, ir.Imm(0), ir.Imm(1), ir.PNone))
	g := ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(1))
	g.Guard = pr
	b.B.Append(g)
	b.Br(ir.EQ, 1, 0, sink)
	b.Halt()
	sink.Halt()
	prog := p.Program()

	st := SnapshotIR(prog)
	if st.Instrs != 6 || st.Blocks != 2 || st.PredDefines != 1 || st.Guarded != 1 || st.Branches != 1 {
		t.Errorf("snapshot %+v", st)
	}
	if st.MaxBlockLen != 5 {
		t.Errorf("max block len %d, want 5", st.MaxBlockLen)
	}

	tr := NewPipelineTrace()
	tr.Record("normalize", prog)
	prog.EntryFunc().EntryBlock().Append(ir.NewInstr(ir.Add, r, ir.R(r), ir.Imm(2)))
	tr.Record("grow", prog)
	if len(tr.Stages) != 2 || tr.Stages[0].Stage != "normalize" {
		t.Fatalf("stages %+v", tr.Stages)
	}
	if d := tr.Delta(1); d.Instrs != 1 {
		t.Errorf("delta %+v", d)
	}
	if tr.Stages[0].WallSeconds < 0 || tr.TotalWall() < 0 {
		t.Error("negative wall time")
	}
	if tr.Final().Instrs != 7 {
		t.Errorf("final %+v", tr.Final())
	}
}

func TestMachineMeta(t *testing.T) {
	m := MachineMetaOf(machine.Issue8Br1())
	if m.Name != "issue8-br1" || m.IssueWidth != 8 || m.BranchSlots != 1 ||
		m.Predictor != "btb" || !m.PerfectCache || m.ICache != nil {
		t.Errorf("perfect-cache meta %+v", m)
	}
	cfg := machine.Issue8Br1Cache()
	cfg.Gshare = true
	mc := MachineMetaOf(cfg)
	if mc.Predictor != "gshare" || mc.ICache == nil || mc.DCache == nil {
		t.Fatalf("cache meta %+v", mc)
	}
	if mc.ICache.SizeBytes != 64<<10 || mc.ICache.BlockBytes != 64 ||
		mc.ICache.Lines != 1024 || mc.ICache.MissCycles != 12 {
		t.Errorf("icache meta %+v", *mc.ICache)
	}
	if m.PredicateDistance != 1 {
		t.Errorf("predicate distance %d, want 1 (decode/issue suppression default)", m.PredicateDistance)
	}
}
