package obs

import "predication/internal/machine"

// CacheMeta describes one cache's geometry in JSON reports.
type CacheMeta struct {
	SizeBytes  int `json:"size_bytes"`
	BlockBytes int `json:"block_bytes"`
	Lines      int `json:"lines"`
	MissCycles int `json:"miss_cycles"`
}

// MachineMeta is the self-describing machine-configuration record embedded
// in JSON outputs (predsim -stats-json, figures -stats-json, predbench
// reports), so committed artifacts carry the processor parameters they
// were measured on.
type MachineMeta struct {
	Name                 string     `json:"name"`
	IssueWidth           int        `json:"issue_width"`
	BranchSlots          int        `json:"branch_slots"`
	Predictor            string     `json:"predictor"`
	BTBEntries           int        `json:"btb_entries"`
	MispredictPenalty    int        `json:"mispredict_penalty"`
	TakenBranchBubble    int        `json:"taken_branch_bubble"`
	PredicateDistance    int        `json:"predicate_distance"`
	WritebackSuppression bool       `json:"writeback_suppression"`
	PerfectCache         bool       `json:"perfect_cache"`
	OoO                  bool       `json:"ooo,omitempty"`
	WindowSize           int        `json:"window_size,omitempty"`
	ICache               *CacheMeta `json:"icache,omitempty"`
	DCache               *CacheMeta `json:"dcache,omitempty"`
}

// MachineMetaOf extracts the metadata record of a configuration.
func MachineMetaOf(cfg machine.Config) MachineMeta {
	m := MachineMeta{
		Name:                 cfg.Name,
		IssueWidth:           cfg.IssueWidth,
		BranchSlots:          cfg.BranchSlots,
		Predictor:            "btb",
		BTBEntries:           cfg.BTBEntries,
		MispredictPenalty:    cfg.MispredictPenalty,
		TakenBranchBubble:    cfg.TakenBranchBubble,
		PredicateDistance:    cfg.PredDist(),
		WritebackSuppression: cfg.WritebackSuppression,
		PerfectCache:         cfg.PerfectCache,
		OoO:                  cfg.OoO,
		WindowSize:           cfg.WindowSize,
	}
	if cfg.Gshare {
		m.Predictor = "gshare"
	}
	if !cfg.PerfectCache {
		m.ICache = cacheMetaOf(cfg.ICache)
		m.DCache = cacheMetaOf(cfg.DCache)
	}
	return m
}

func cacheMetaOf(c machine.CacheConfig) *CacheMeta {
	return &CacheMeta{
		SizeBytes:  c.SizeBytes,
		BlockBytes: c.BlockSize,
		Lines:      c.Lines(),
		MissCycles: c.MissCycles,
	}
}
