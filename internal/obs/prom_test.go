package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition text for a known
// registry state: metric ordering, cumulative buckets, the +Inf
// catch-all, and — now that histogram bounds are float64 — the rendering
// rules CI greps depend on: integral bounds print without a fractional
// part (le="1000", as before the float conversion) and sub-millisecond
// bounds print in plain decimal, never exponent form.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_requests").Add(7)
	r.Counter("cells_ok").Inc()
	h := r.Histogram("serve_compute_ms", []float64{0.05, 1, 1000})
	h.Observe(0.02)
	h.Observe(0.5)
	h.Observe(300)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE cells_ok counter",
		"cells_ok 1",
		"# TYPE serve_requests counter",
		"serve_requests 7",
		"# TYPE serve_compute_ms histogram",
		`serve_compute_ms_bucket{le="0.05"} 1`,
		`serve_compute_ms_bucket{le="1"} 2`,
		`serve_compute_ms_bucket{le="1000"} 3`,
		`serve_compute_ms_bucket{le="+Inf"} 4`,
		"serve_compute_ms_sum 5300.52",
		"serve_compute_ms_count 4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition text drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestLatencyBucketLadder: the shared ladder is ascending, spans
// sub-millisecond hits to ten-second computes, and keeps the historical
// decade bounds so existing bucket greps still match.
func TestLatencyBucketLadder(t *testing.T) {
	for i := 1; i < len(LatencyBucketsMS); i++ {
		if LatencyBucketsMS[i] <= LatencyBucketsMS[i-1] {
			t.Fatalf("ladder not ascending at %d: %v", i, LatencyBucketsMS)
		}
	}
	if LatencyBucketsMS[0] >= 1 {
		t.Errorf("ladder starts at %vms; want sub-millisecond resolution", LatencyBucketsMS[0])
	}
	if last := LatencyBucketsMS[len(LatencyBucketsMS)-1]; last != 10000 {
		t.Errorf("ladder tops out at %vms, want 10000", last)
	}
	present := map[float64]bool{}
	for _, b := range LatencyBucketsMS {
		present[b] = true
	}
	for _, decade := range []float64{1, 10, 100, 1000, 10000} {
		if !present[decade] {
			t.Errorf("ladder lost the historical decade bound %v", decade)
		}
	}
}

// TestRegistryConcurrentAccess hammers Observe, Inc, Snapshot, and
// WritePrometheus from many goroutines — the data-race check for the
// per-stage histograms the request middleware updates on every request
// while /metrics renders.  Run under -race in CI.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("serve_requests").Inc()
				r.Histogram("serve_stage_mem_ms", LatencyBucketsMS).Observe(float64(i) / 7)
				if i%10 == 0 {
					snap := r.Snapshot()
					if snap.Counters["serve_requests"] < 1 {
						t.Error("snapshot lost a counter")
						return
					}
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["serve_requests"]; got != workers*iters {
		t.Errorf("serve_requests = %d, want %d", got, workers*iters)
	}
	h := snap.Histograms["serve_stage_mem_ms"]
	if h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket counts sum to %d, count is %d", bucketSum, h.Count)
	}
}
