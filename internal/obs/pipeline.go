package obs

import (
	"time"

	"predication/internal/ir"
)

// IRStats is a structural snapshot of a program, recorded after each
// compile-pipeline stage so stage-over-stage deltas show what every pass
// did to the code: how many predicate defines if-conversion inserted, how
// many branches it removed, how promotion changed the guarded population.
type IRStats struct {
	// Instrs counts static instructions across live blocks.
	Instrs int `json:"instrs"`
	// Blocks counts live basic blocks.
	Blocks int `json:"blocks"`
	// PredDefines counts the full-predication define family (pred,
	// pred_clear, pred_set) — the paper's dependence-height overhead.
	PredDefines int `json:"pred_defines"`
	// Guarded counts instructions carrying a real guard predicate.
	Guarded int `json:"guarded"`
	// Branches counts control-transfer instructions.
	Branches int `json:"branches"`
	// CondMoves counts the partial-predication family (cmov, cmov_com,
	// select).
	CondMoves int `json:"cond_moves"`
	// MaxBlockLen is the largest live block's instruction count (hyperblock
	// formation grows it; a proxy for formation aggressiveness).
	MaxBlockLen int `json:"max_block_len"`
}

// SnapshotIR measures the program.
func SnapshotIR(p *ir.Program) IRStats {
	var st IRStats
	for _, f := range p.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			st.Blocks++
			if len(b.Instrs) > st.MaxBlockLen {
				st.MaxBlockLen = len(b.Instrs)
			}
			for _, in := range b.Instrs {
				st.Instrs++
				switch in.Op {
				case ir.PredDef, ir.PredClear, ir.PredSet:
					st.PredDefines++
				case ir.CMov, ir.CMovCom, ir.Select:
					st.CondMoves++
				}
				if in.Op.IsBranch() {
					st.Branches++
				}
				if in.Guard != ir.PNone {
					st.Guarded++
				}
			}
		}
	}
	return st
}

// Sub returns the component-wise delta st - prev.
func (st IRStats) Sub(prev IRStats) IRStats {
	return IRStats{
		Instrs:      st.Instrs - prev.Instrs,
		Blocks:      st.Blocks - prev.Blocks,
		PredDefines: st.PredDefines - prev.PredDefines,
		Guarded:     st.Guarded - prev.Guarded,
		Branches:    st.Branches - prev.Branches,
		CondMoves:   st.CondMoves - prev.CondMoves,
		MaxBlockLen: st.MaxBlockLen - prev.MaxBlockLen,
	}
}

// StageRecord is one pipeline stage's measurement: what the stage cost in
// wall time and what the program looked like when it finished.
type StageRecord struct {
	Stage string `json:"stage"`
	// WallSeconds is the time from the previous record (or trace creation)
	// to this stage's completion — the stage's own cost when stages record
	// in pipeline order.
	WallSeconds float64 `json:"wall_seconds"`
	IR          IRStats `json:"ir"`
}

// PipelineTrace records the per-stage progression of one compile.  Attach
// one via core.Options.Pipeline; core.Compile records after every stage it
// runs, so the stage list varies by model (partial-conversion only appears
// under the conditional-move pipeline, and so on).
type PipelineTrace struct {
	Stages []StageRecord `json:"stages"`
	// HyperblockSizes lists the instruction count of every hyperblock head
	// block at formation time (empty for the superblock model).
	HyperblockSizes []int `json:"hyperblock_sizes,omitempty"`

	last time.Time
}

// NewPipelineTrace creates a trace whose first stage is timed from now.
func NewPipelineTrace() *PipelineTrace {
	return &PipelineTrace{last: time.Now()}
}

// Record appends a stage measurement.
func (t *PipelineTrace) Record(stage string, p *ir.Program) {
	now := time.Now()
	t.Stages = append(t.Stages, StageRecord{
		Stage:       stage,
		WallSeconds: now.Sub(t.last).Seconds(),
		IR:          SnapshotIR(p),
	})
	t.last = now
}

// Delta returns stage i's IR change relative to the previous stage (the
// first stage's delta is its absolute snapshot against an empty program).
func (t *PipelineTrace) Delta(i int) IRStats {
	if i == 0 {
		return t.Stages[0].IR
	}
	return t.Stages[i].IR.Sub(t.Stages[i-1].IR)
}

// TotalWall sums every stage's wall time.
func (t *PipelineTrace) TotalWall() float64 {
	var s float64
	for _, st := range t.Stages {
		s += st.WallSeconds
	}
	return s
}

// Final returns the last recorded snapshot (the emitted program) or the
// zero IRStats when nothing was recorded.
func (t *PipelineTrace) Final() IRStats {
	if len(t.Stages) == 0 {
		return IRStats{}
	}
	return t.Stages[len(t.Stages)-1].IR
}
