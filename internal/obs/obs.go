// Package obs is the observability layer of the simulator stack: cycle
// accounting, structured trace export, pipeline instrumentation, and a
// registry of counters and histograms with a stable JSON schema.
//
// The paper's core claims are explanations, not just speedups — full
// predication wins because it removes mispredict and branch-issue-bandwidth
// penalties, and loses when predicate defines stretch the dependence height
// (§4).  Reproducing the bars is not enough to reproduce the *why*; that
// takes a stall-cause decomposition of every simulated cycle.  This package
// supplies the vocabulary (Breakdown, CycleAccount, InstrClass), the export
// formats (TraceWriter, Registry), and the compile-pipeline instrumentation
// (PipelineTrace); internal/sim, internal/core, and internal/experiments
// wire them through, and the CLIs surface them behind -breakdown,
// -stats-json, and -trace-out.  See docs/OBSERVABILITY.md.
//
// Everything here is off the hot path: the simulator consults the layer
// only when a CycleAccount is attached, so the pre-decoded zero-allocation
// data path (docs/PERFORMANCE.md) is unaffected when observability is off.
package obs

import "predication/internal/ir"

// InstrClass buckets opcodes for the dynamic-instruction-mix histograms
// (the paper's Table 3-style data).  The classes separate exactly the
// populations the paper's analysis distinguishes: predicate defines (the
// full-predication overhead), conditional moves (the partial-predication
// overhead), branches (the baseline's overhead), and the functional-unit
// classes underneath.
type InstrClass uint8

// Instruction classes in stable reporting order.
const (
	// ClassIALU is single-cycle integer work: arithmetic, logic, shifts,
	// moves, and integer comparisons.
	ClassIALU InstrClass = iota
	// ClassMulDiv is multi-cycle integer arithmetic (mul, div, rem).
	ClassMulDiv
	// ClassFALU is floating-point arithmetic, conversion, and comparison.
	ClassFALU
	// ClassLoad and ClassStore are the memory operations.
	ClassLoad
	ClassStore
	// ClassCondBranch is compare-and-branch.
	ClassCondBranch
	// ClassJump is unconditional control transfer: jump, jsr, ret.
	ClassJump
	// ClassPredDef is the full-predication define family, including the
	// pred_clear/pred_set broadcasts.
	ClassPredDef
	// ClassCMov is the partial-predication family: cmov, cmov_com, select.
	ClassCMov
	// ClassGuard is the guard-instruction encoding's prefix instruction.
	ClassGuard
	// ClassNop is nop and halt.
	ClassNop

	// NumClasses is the number of instruction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	ClassIALU:       "ialu",
	ClassMulDiv:     "muldiv",
	ClassFALU:       "falu",
	ClassLoad:       "load",
	ClassStore:      "store",
	ClassCondBranch: "cond_branch",
	ClassJump:       "jump",
	ClassPredDef:    "pred_define",
	ClassCMov:       "cond_move",
	ClassGuard:      "guard",
	ClassNop:        "nop",
}

// String returns the class name used in reports and JSON output.
func (c InstrClass) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// ClassOf buckets an opcode.
func ClassOf(op ir.Op) InstrClass {
	switch {
	case op == ir.Nop || op == ir.Halt:
		return ClassNop
	case op == ir.Mul || op == ir.Div || op == ir.Rem:
		return ClassMulDiv
	case op.IsFloat() || op == ir.CvtFI:
		// ir.Op.IsFloat's range misses CvtFI (it consumes a float and
		// produces an integer); the FP unit still executes it.
		return ClassFALU
	case op == ir.Load:
		return ClassLoad
	case op == ir.Store:
		return ClassStore
	case op.IsCondBranch():
		return ClassCondBranch
	case op == ir.Jump || op == ir.JSR || op == ir.Ret:
		return ClassJump
	case op == ir.PredDef || op == ir.PredClear || op == ir.PredSet:
		return ClassPredDef
	case op == ir.CMov || op == ir.CMovCom || op == ir.Select:
		return ClassCMov
	case op == ir.GuardApply:
		return ClassGuard
	default:
		return ClassIALU
	}
}
