// Package difftest is the cross-model differential oracle behind
// cmd/predfuzz.  The paper's central claim is that the superblock,
// conditional-move, full-predication, and guard-instruction pipelines
// emit semantically identical programs whose only difference is
// performance; this package turns that claim into an executable check
// over progen-generated programs:
//
//	source --emulate--> reference memory image + checksum
//	source --compile(model)--> emulate --> must match, for every model
//
// A mismatch in final checksum, memory image, or trap behaviour is a
// Divergence.  Divergences are delta-minimized (blocks, then
// instructions, dropped while the same divergence reproduces) and written
// as self-contained .psasm repro artifacts that predsim can run directly.
package difftest

import (
	"fmt"
	"os"
	"path/filepath"

	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/progen"

	"predication/internal/asm"
)

// Kind classifies how a model diverged from the reference emulation.
type Kind string

// Divergence kinds.
const (
	// KindCompile: the pipeline rejected a program the reference runs.
	KindCompile Kind = "compile"
	// KindTrap: the compiled program trapped or exceeded the step budget
	// while the reference completed.
	KindTrap Kind = "trap"
	// KindChecksum: the checksum word differs from the reference.
	KindChecksum Kind = "checksum"
	// KindMemory: a non-reserved memory word differs from the reference.
	KindMemory Kind = "memory"
	// KindEmu: the legacy and pre-decoded emulators disagree on the same
	// compiled program (Options.CrossEmu) — an emulator bug, not a
	// miscompile.
	KindEmu Kind = "emu"
)

// Options configures the oracle.  Use DefaultOptions as the base: the
// zero value has no machine configuration or generator parameters.
type Options struct {
	// Machine is the scheduling target (performance-neutral for the
	// oracle, but it exercises model-specific schedules).
	Machine machine.Config
	// Models are the pipelines compared against the reference.
	Models []core.Model
	// Params configures progen.
	Params progen.Params
	// Nested selects progen.GenerateNested (two-level loop nests) instead
	// of progen.Generate.
	Nested bool
	// MaxSteps bounds every emulation run.  Minimization candidates can
	// loop forever, so this must stay well under emu's 500M default.
	MaxSteps int64
	// VerifyStages enables the per-stage IR verifier during compilation.
	VerifyStages bool
	// Mutate, when non-nil, is applied to each compiled program before
	// emulation.  It exists to inject miscompiles in tests of the oracle
	// itself (fault injection), and is reapplied during minimization so
	// the injected divergence keeps reproducing.
	Mutate func(p *ir.Program, model core.Model)
	// CrossEmu additionally re-runs every compiled program under the
	// legacy tree-walking interpreter and compares step count, checksum,
	// and final memory against the pre-decoded fast path (KindEmu on
	// disagreement).  This fuzzes the emulator pair itself on top of the
	// cross-model oracle.
	CrossEmu bool
}

// DefaultOptions returns the standard oracle configuration: all four
// compilation pipelines — the paper's three models plus the guard-
// instruction design point (internal/guardinstr, the predication-spectrum
// arm of EXPERIMENTS.md) — on the 8-issue machine, default generator
// parameters, and a 5M-step emulation budget.
func DefaultOptions() Options {
	return Options{
		Machine:  machine.Issue8Br1(),
		Models:   []core.Model{core.Superblock, core.CondMove, core.FullPred, core.GuardInstr},
		Params:   progen.Default(),
		MaxSteps: 5_000_000,
	}
}

// Divergence is one disagreement between a compiled model and the
// reference emulation of the same source program.
type Divergence struct {
	Seed   uint64
	Nested bool
	Model  core.Model
	Kind   Kind
	Detail string
	// Source is the generated program exposing the divergence, after
	// minimization when Minimize has run.
	Source *ir.Program
}

// String formats the divergence as one line.
func (d *Divergence) String() string {
	shape := "flat"
	if d.Nested {
		shape = "nested"
	}
	return fmt.Sprintf("seed %d (%s) model %v: %s: %s", d.Seed, shape, d.Model, d.Kind, d.Detail)
}

// Source generates the program for a seed under the options' shape.
func Source(seed uint64, opts Options) *ir.Program {
	if opts.Nested {
		return progen.GenerateNested(seed, opts.Params)
	}
	return progen.Generate(seed, opts.Params)
}

// Check runs the oracle on one generated seed.  It returns the first
// divergence found (nil when all models agree), or an error when the
// reference emulation itself fails — a generator bug, not a miscompile.
func Check(seed uint64, opts Options) (*Divergence, error) {
	return CheckProgram(Source(seed, opts), seed, opts)
}

// CheckProgram runs the oracle on an explicit source program (used by
// minimization, which mutates the source and re-checks).
func CheckProgram(src *ir.Program, seed uint64, opts Options) (*Divergence, error) {
	ref, err := emu.Run(src, emu.Options{MaxSteps: opts.MaxSteps})
	if err != nil {
		return nil, fmt.Errorf("difftest: seed %d: reference emulation failed: %w", seed, err)
	}
	want := ref.Word(progen.CheckAddr)

	diverge := func(model core.Model, kind Kind, format string, args ...any) *Divergence {
		return &Divergence{Seed: seed, Nested: opts.Nested, Model: model, Kind: kind,
			Detail: fmt.Sprintf(format, args...), Source: src}
	}
	for _, model := range opts.Models {
		copts := core.DefaultOptions(opts.Machine)
		copts.VerifyStages = opts.VerifyStages
		c, err := core.Compile(src, model, copts)
		if err != nil {
			return diverge(model, KindCompile, "%v", err), nil
		}
		if opts.Mutate != nil {
			opts.Mutate(c.Prog, model)
		}
		res, err := emu.Run(c.Prog, emu.Options{MaxSteps: opts.MaxSteps})
		if err != nil {
			return diverge(model, KindTrap, "reference completed but compiled program failed: %v", err), nil
		}
		if got := res.Word(progen.CheckAddr); got != want {
			return diverge(model, KindChecksum, "checksum %#x, want %#x", got, want), nil
		}
		if addr, got, ok := memDiff(ref.Mem, res.Mem); ok {
			return diverge(model, KindMemory, "mem[%d] = %#x, want %#x", addr, got, ref.Mem[addr]), nil
		}
		if opts.CrossEmu {
			leg, err := emu.Run(c.Prog, emu.Options{MaxSteps: opts.MaxSteps, Legacy: true})
			switch {
			case err != nil:
				return diverge(model, KindEmu, "fast emulator completed but legacy failed: %v", err), nil
			case leg.Steps != res.Steps:
				return diverge(model, KindEmu, "legacy emulator ran %d steps, fast ran %d", leg.Steps, res.Steps), nil
			case leg.Word(progen.CheckAddr) != res.Word(progen.CheckAddr):
				return diverge(model, KindEmu, "legacy checksum %#x, fast %#x",
					leg.Word(progen.CheckAddr), res.Word(progen.CheckAddr)), nil
			}
			if addr, got, ok := memDiff(res.Mem, leg.Mem); ok {
				return diverge(model, KindEmu, "legacy mem[%d] = %#x, fast %#x", addr, got, res.Mem[addr]), nil
			}
		}
	}
	return nil, nil
}

// memDiff compares final memory images, skipping ir.SafeAddr: partial
// predication redirects suppressed stores to the reserved safe word, so
// its final contents are model-specific by design.
func memDiff(ref, got []int64) (addr int, val int64, differs bool) {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if int64(i) == ir.SafeAddr {
			continue
		}
		if ref[i] != got[i] {
			return i, got[i], true
		}
	}
	if len(ref) != len(got) {
		return n, 0, true
	}
	return 0, 0, false
}

// Minimize delta-minimizes the divergence's source program: it repeatedly
// tries marking blocks dead and deleting instructions, keeping each edit
// only while the SAME divergence (model and kind) still reproduces.
// Edits that break the program are rejected naturally — they change the
// divergence kind (usually to compile) or fix it.  The divergence's
// Source is replaced with the minimized program, which is returned.
func Minimize(d *Divergence, opts Options) *ir.Program {
	cur := d.Source.Clone()
	reproduces := func(p *ir.Program) bool {
		nd, err := CheckProgram(p, d.Seed, opts)
		return err == nil && nd != nil && nd.Model == d.Model && nd.Kind == d.Kind
	}
	for changed := true; changed; {
		changed = false
		// Whole blocks first: one test can discard many instructions.
		for _, f := range cur.Funcs {
			for bi, b := range f.Blocks {
				if b == nil || b.Dead || bi == f.Entry {
					continue
				}
				b.Dead = true
				if reproduces(cur) {
					changed = true
				} else {
					b.Dead = false
				}
			}
		}
		for _, f := range cur.Funcs {
			for _, b := range f.Blocks {
				if b == nil || b.Dead {
					continue
				}
				for i := len(b.Instrs) - 1; i >= 0; i-- {
					saved := b.Instrs[i]
					b.RemoveAt(i)
					if reproduces(cur) {
						changed = true
					} else {
						b.InsertAt(i, saved)
					}
				}
			}
		}
	}
	d.Source = cur
	return cur
}

// ModelSlug returns the predsim -model flag value for a model.
func ModelSlug(m core.Model) string {
	switch m {
	case core.Superblock:
		return "superblock"
	case core.CondMove:
		return "cmov"
	case core.FullPred:
		return "full"
	case core.GuardInstr:
		return "guard"
	}
	return "unknown"
}

// WriteRepro writes the divergence's source program as a self-contained
// .psasm artifact under dir and returns the file path.  The header
// comments record the oracle context; the body parses with asm.Parse and
// runs directly under predsim.
func WriteRepro(dir string, d *Divergence) (string, error) {
	shape := "flat"
	if d.Nested {
		shape = "nested"
	}
	name := fmt.Sprintf("seed%d_%s_%s.psasm", d.Seed, ModelSlug(d.Model), d.Kind)
	var hdr string
	hdr += "; predfuzz repro artifact — cross-model divergence\n"
	hdr += fmt.Sprintf("; seed: %d (%s program shape)\n", d.Seed, shape)
	hdr += fmt.Sprintf("; model: %v\n", d.Model)
	hdr += fmt.Sprintf("; kind: %s\n", d.Kind)
	hdr += fmt.Sprintf("; detail: %s\n", d.Detail)
	hdr += fmt.Sprintf("; reproduce: predsim -file %s -model %s\n", name, ModelSlug(d.Model))
	hdr += fmt.Sprintf("; (the checksum word is mem[%d]; compare it across -model values)\n", progen.CheckAddr)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("difftest: creating repro dir: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(hdr+asm.Format(d.Source)), 0o644); err != nil {
		return "", fmt.Errorf("difftest: writing repro: %w", err)
	}
	return path, nil
}
