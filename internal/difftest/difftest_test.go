package difftest

import (
	"os"
	"strings"
	"testing"

	"predication/internal/asm"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/progen"
)

// TestDefaultOracleCoversAllModels: the default oracle must fuzz every
// compilation pipeline, including the guard-instruction model — it was
// silently missing from the default model list once, so the fourth
// pipeline went unfuzzed (regression guard).
func TestDefaultOracleCoversAllModels(t *testing.T) {
	want := []core.Model{core.Superblock, core.CondMove, core.FullPred, core.GuardInstr}
	got := DefaultOptions().Models
	if len(got) != len(want) {
		t.Fatalf("default oracle covers %d models %v, want %d %v", len(got), got, len(want), want)
	}
	for i, m := range want {
		if got[i] != m {
			t.Errorf("Models[%d] = %v, want %v", i, got[i], m)
		}
	}
}

// TestOracleCleanSeeds: the four pipelines agree with the reference on a
// spread of generated programs, flat and nested.  This is the -race CI
// target for the oracle itself.
func TestOracleCleanSeeds(t *testing.T) {
	n := uint64(20)
	if testing.Short() {
		n = 5
	}
	for _, nested := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Nested = nested
		for seed := uint64(1); seed <= n; seed++ {
			d, err := Check(seed, opts)
			if err != nil {
				t.Fatalf("nested=%v seed %d: %v", nested, seed, err)
			}
			if d != nil {
				t.Errorf("unexpected divergence: %v", d)
			}
		}
	}
}

// injectAddOffByOne corrupts full-predication output only: every add with
// an immediate second operand is bumped by one.  progen's loop counters
// are exactly that shape, so the corruption always executes and the
// checksum diverges deterministically.
func injectAddOffByOne(p *ir.Program, model core.Model) {
	if model != core.FullPred {
		return
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b == nil || b.Dead {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.Add && in.B.IsImm {
					in.B.Imm++
				}
			}
		}
	}
}

// TestInjectedMiscompile is the oracle's own fault-injection test: a
// deliberate miscompile must be caught, delta-minimized, and written as a
// parseable self-contained repro artifact.
func TestInjectedMiscompile(t *testing.T) {
	opts := DefaultOptions()
	opts.Mutate = injectAddOffByOne
	const seed = 7

	d, err := Check(seed, opts)
	if err != nil {
		t.Fatalf("oracle error: %v", err)
	}
	if d == nil {
		t.Fatalf("injected miscompile not detected")
	}
	if d.Model != core.FullPred || d.Kind != KindChecksum {
		t.Fatalf("divergence attributed to %v/%s, want %v/%s", d.Model, d.Kind, core.FullPred, KindChecksum)
	}

	before := d.Source.NumInstrs()
	min := Minimize(d, opts)
	after := min.NumInstrs()
	if after > before {
		t.Fatalf("minimization grew the program: %d -> %d instructions", before, after)
	}
	if after == before {
		t.Logf("minimization removed nothing (%d instructions)", before)
	}
	// The minimized program must still reproduce the same divergence.
	nd, err := CheckProgram(min, seed, opts)
	if err != nil {
		t.Fatalf("minimized program: oracle error: %v", err)
	}
	if nd == nil || nd.Model != d.Model || nd.Kind != d.Kind {
		t.Fatalf("minimized program no longer reproduces the divergence: %v", nd)
	}

	dir := t.TempDir()
	path, err := WriteRepro(dir, d)
	if err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading repro: %v", err)
	}
	text := string(data)
	for _, frag := range []string{"seed: 7", "kind: checksum", "Full Predication"} {
		if !strings.Contains(text, frag) {
			t.Errorf("repro artifact missing %q", frag)
		}
	}
	// Self-contained: the artifact parses and emulates to the reference
	// checksum of the minimized source.
	parsed, err := asm.Parse(text)
	if err != nil {
		t.Fatalf("repro artifact does not parse: %v", err)
	}
	want, err := emu.Run(min, emu.Options{MaxSteps: opts.MaxSteps})
	if err != nil {
		t.Fatalf("minimized source emulation: %v", err)
	}
	got, err := emu.Run(parsed, emu.Options{MaxSteps: opts.MaxSteps})
	if err != nil {
		t.Fatalf("repro artifact emulation: %v", err)
	}
	if got.Word(progen.CheckAddr) != want.Word(progen.CheckAddr) {
		t.Errorf("repro artifact checksum %#x, want %#x",
			got.Word(progen.CheckAddr), want.Word(progen.CheckAddr))
	}
}

// TestMinimizeRejectsBreakingEdits: minimization must never return a
// program whose reference emulation fails (every kept edit passed the
// oracle, which emulates the reference first).
func TestMinimizeRejectsBreakingEdits(t *testing.T) {
	opts := DefaultOptions()
	opts.Mutate = injectAddOffByOne
	d, err := Check(11, opts)
	if err != nil {
		t.Fatalf("oracle error: %v", err)
	}
	if d == nil {
		t.Fatalf("injected miscompile not detected")
	}
	min := Minimize(d, opts)
	if _, err := emu.Run(min, emu.Options{MaxSteps: opts.MaxSteps}); err != nil {
		t.Fatalf("minimized program's reference emulation fails: %v", err)
	}
	if err := min.Verify(); err != nil {
		t.Fatalf("minimized program is structurally invalid: %v", err)
	}
}
