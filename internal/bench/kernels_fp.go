package bench

import (
	"predication/internal/builder"
	"predication/internal/ir"
)

// Alvinn mirrors 052.alvinn: neural-network forward passes dominated by
// floating-point multiply-accumulate loops with very few data-dependent
// branches (only an activation clamp).  Predication has little to offer;
// all three models should perform similarly (Figure 8).
func Alvinn() *Kernel {
	return &Kernel{Name: "052.alvinn", Paper: "SPEC 052.alvinn: MLP forward pass, FP MAC loops with rare clamps", Build: buildAlvinn}
}

func buildAlvinn() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xa1f)
	const inputs, hidden, epochs = 30, 16, 80
	w1 := make([]float64, hidden*inputs)
	for i := range w1 {
		w1[i] = rng.float()*2 - 1
	}
	x := make([]float64, inputs)
	for i := range x {
		x[i] = rng.float()
	}
	w1Base := p.Floats(w1...)
	xBase := p.Floats(x...)
	hBase := p.Alloc(hidden)

	f := p.Func("main")
	e, h, i, idx, acc, wv, xv, t, sum, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	eloop := f.Block("epoch")
	hloop := f.Block("hidden")
	iloop := f.Block("dot")
	clamp := f.Block("clamp")
	hstore := f.Block("hstore")
	hnext := f.Block("hnext")
	enext := f.Block("enext")
	done := f.Block("done")

	entry.Mov(e, 0).Mov(sum, ir.FImm(0))
	entry.Fall(eloop)
	eloop.Br(ir.GE, e, int64(epochs), done)
	eloop.Mov(h, 0)
	eloop.Fall(hloop)
	hloop.Br(ir.GE, h, int64(hidden), enext)
	hloop.Mov(acc, ir.FImm(0))
	hloop.I(ir.Mul, idx, h, int64(inputs))
	hloop.Mov(i, 0)
	hloop.Fall(iloop)
	iloop.Br(ir.GE, i, int64(inputs), clamp)
	iloop.I(ir.Add, t, idx, i)
	iloop.Load(wv, t, w1Base)
	iloop.Load(xv, i, xBase)
	iloop.I(ir.MulF, t, wv, xv)
	iloop.I(ir.AddF, acc, acc, t)
	iloop.I(ir.Add, i, i, 1)
	iloop.Jmp(iloop)
	clamp.I(ir.CmpGTF, t, acc, 3.0)
	clamp.Br(ir.EQ, t, 0, hstore) // clamp rarely fires
	clamp.Mov(acc, ir.FImm(3.0))
	clamp.Fall(hstore)
	hstore.Store(h, hBase, acc)
	hstore.I(ir.AddF, sum, sum, acc)
	hstore.Fall(hnext)
	hnext.I(ir.Add, h, h, 1)
	hnext.Jmp(hloop)
	enext.I(ir.Add, e, e, 1)
	enext.Jmp(eloop)
	done.I(ir.MulF, sum, sum, 1024.0)
	done.I(ir.CvtFI, cs, sum)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Ear mirrors 056.ear: a cochlea-model filterbank — cascaded second-order
// sections of floating-point arithmetic over a sample stream, with a rare
// conditional on the rectified output.
func Ear() *Kernel {
	return &Kernel{Name: "056.ear", Paper: "SPEC 056.ear: cascaded biquad filterbank over an audio stream", Build: buildEar}
}

func buildEar() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xea7)
	const channels, samples = 8, 2200
	coef := make([]float64, channels*5)
	for i := range coef {
		coef[i] = rng.float()*0.5 - 0.25
	}
	sig := make([]float64, samples)
	for i := range sig {
		sig[i] = rng.float()*2 - 1
	}
	coefBase := p.Floats(coef...)
	sigBase := p.Floats(sig...)
	s1Base := p.Alloc(channels)
	s2Base := p.Alloc(channels)

	f := p.Func("main")
	s, c, x, y, a0, a1, a2, b1, b2, s1, s2, t, u, energy, peaks, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(),
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	sloop := f.Block("sample")
	cloop := f.Block("channel")
	peak := f.Block("peak")
	cnext := f.Block("cnext")
	snext := f.Block("snext")
	done := f.Block("done")

	entry.Mov(s, 0).Mov(energy, ir.FImm(0)).Mov(peaks, 0)
	entry.Fall(sloop)
	sloop.Br(ir.GE, s, int64(samples), done)
	sloop.Load(x, s, sigBase)
	sloop.Mov(c, 0)
	sloop.Fall(cloop)
	cloop.Br(ir.GE, c, int64(channels), snext)
	cloop.I(ir.Mul, t, c, 5)
	cloop.Load(a0, t, coefBase)
	cloop.Load(a1, t, coefBase+1)
	cloop.Load(a2, t, coefBase+2)
	cloop.Load(b1, t, coefBase+3)
	cloop.Load(b2, t, coefBase+4)
	cloop.Load(s1, c, s1Base)
	cloop.Load(s2, c, s2Base)
	// Transposed direct-form II biquad:
	//   y  = a0*x + s1
	//   s1 = a1*x - b1*y + s2
	//   s2 = a2*x - b2*y
	cloop.I(ir.MulF, y, a0, x)
	cloop.I(ir.AddF, y, y, s1)
	cloop.I(ir.MulF, t, a1, x)
	cloop.I(ir.MulF, u, b1, y)
	cloop.I(ir.SubF, t, t, u)
	cloop.I(ir.AddF, s1, t, s2)
	cloop.I(ir.MulF, t, a2, x)
	cloop.I(ir.MulF, u, b2, y)
	cloop.I(ir.SubF, s2, t, u)
	cloop.Store(c, s1Base, s1)
	cloop.Store(c, s2Base, s2)
	cloop.Mov(x, y) // cascade: output feeds the next section
	cloop.I(ir.CmpGTF, t, y, 0.40)
	cloop.Br(ir.EQ, t, 0, cnext) // peak detection rarely fires
	cloop.Fall(peak)
	peak.I(ir.Add, peaks, peaks, 1)
	peak.Fall(cnext)
	cnext.I(ir.Add, c, c, 1)
	cnext.Jmp(cloop)
	snext.I(ir.AbsF, t, y)
	snext.I(ir.AddF, energy, energy, t)
	snext.I(ir.Add, s, s, 1)
	snext.Jmp(sloop)
	done.I(ir.MulF, energy, energy, 4096.0)
	done.I(ir.CvtFI, cs, energy)
	done.I(ir.Mul, cs, cs, 31)
	done.I(ir.Add, cs, cs, peaks)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}
