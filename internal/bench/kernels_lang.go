package bench

import (
	"fmt"

	"predication/internal/builder"
	"predication/internal/ir"
)

// Lex mirrors the lex scanner: a table-driven DFA whose per-character class
// computation is a cascade of biased range diamonds.  Conditional-move
// conversion roughly doubles the dynamic instruction count (Table 2 shows
// 2.10x for lex).
func Lex() *Kernel {
	return &Kernel{Name: "lex", Paper: "lex: table-driven DFA with class-computation diamonds", Build: buildLex}
}

func buildLex() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0x1e8)
	text := genText(rng, 8000)
	buf := p.Bytes(text)
	n := int64(len(text))

	// DFA: 8 states x 6 classes.  Class 0: letter, 1: space, 2: newline,
	// 3: tab, 4: digit, 5: other.  Transition table generated
	// pseudo-randomly but fixed; state 7 is "accept".
	const states, classes = 8, 6
	tab := make([]int64, states*classes)
	for i := range tab {
		tab[i] = rng.intn(states)
	}
	// Ensure accept is reachable but uncommon.
	for s := 0; s < states; s++ {
		tab[s*classes+1] = 0 // space resets
		if s >= 5 {
			tab[s*classes] = 7
		}
	}
	tabBase := p.Words(tab...)

	f := p.Func("main")
	i, c, cls, state, tok, t, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	cLetter := f.Block("cls-letter")
	c1 := f.Block("c1")
	cSpace := f.Block("cls-space")
	c2 := f.Block("c2")
	cNl := f.Block("cls-nl")
	c3 := f.Block("c3")
	cTab := f.Block("cls-tab")
	c4 := f.Block("c4")
	cDigit := f.Block("cls-digit")
	cOther := f.Block("cls-other")
	trans := f.Block("trans")
	accept := f.Block("accept")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(state, 0).Mov(tok, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, i, n, done)
	loop.Load(c, i, buf)
	loop.Fall(c1)
	c1.Br(ir.LT, c, int64('a'), c2) // ~20%: not a letter
	c1.Fall(cLetter)
	cLetter.Mov(cls, 0)
	cLetter.Jmp(trans)
	c2.Br(ir.NE, c, int64(' '), c3)
	c2.Fall(cSpace)
	cSpace.Mov(cls, 1)
	cSpace.Jmp(trans)
	c3.Br(ir.NE, c, int64('\n'), c4)
	c3.Fall(cNl)
	cNl.Mov(cls, 2)
	cNl.Jmp(trans)
	c4.Br(ir.NE, c, int64('\t'), cOther)
	c4.Fall(cTab)
	cTab.Mov(cls, 3)
	cTab.Jmp(trans)
	cOther.Br(ir.LT, c, int64('0'), cDigit) // punctuation below '0'
	cOther.Mov(cls, 5)
	cOther.Jmp(trans)
	cDigit.Mov(cls, 4)
	cDigit.Fall(trans)
	trans.I(ir.Mul, t, state, int64(classes))
	trans.I(ir.Add, t, t, cls)
	trans.Load(state, t, tabBase)
	trans.Br(ir.NE, state, 7, next)
	trans.Fall(accept)
	accept.I(ir.Add, tok, tok, 1)
	accept.Mov(state, 0)
	accept.Fall(next)
	next.I(ir.Add, i, i, 1)
	next.Jmp(loop)
	done.I(ir.Mul, cs, tok, 131071).I(ir.Add, cs, cs, state)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Yacc mirrors a yacc LALR parser loop: action-table lookups, a parse
// stack in memory, and shift/reduce diamonds.
func Yacc() *Kernel {
	return &Kernel{Name: "yacc", Paper: "yacc: LALR shift/reduce loop with table lookups and a parse stack", Build: buildYacc}
}

func buildYacc() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xacc)
	const nStates, nToks, nInput = 12, 6, 5000
	// Action table: positive = shift to state, negative = reduce rule,
	// generated to keep the machine live.
	action := make([]int64, nStates*nToks)
	for i := range action {
		if rng.intn(100) < 62 {
			action[i] = rng.intn(nStates) // shift
		} else {
			action[i] = -(1 + rng.intn(4)) // reduce rule 1..4
		}
	}
	rlen := []int64{0, 1, 2, 3, 2} // rule lengths
	gotoTab := make([]int64, nStates*5)
	for i := range gotoTab {
		gotoTab[i] = rng.intn(nStates)
	}
	input := make([]int64, nInput)
	for i := range input {
		input[i] = rng.intn(nToks)
	}
	actBase := p.Words(action...)
	rlenBase := p.Words(rlen...)
	gotoBase := p.Words(gotoTab...)
	inBase := p.Words(input...)
	stack := p.Alloc(4096)

	f := p.Func("main")
	ip, sp, state, tok, act, r, ln, t, reduces, shifts, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	lookup := f.Block("lookup")
	shift := f.Block("shift")
	reduce := f.Block("reduce")
	clampSp := f.Block("clamp-sp")
	afterClamp := f.Block("after-clamp")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(ip, 0).Mov(sp, 0).Mov(state, 0).Mov(reduces, 0).Mov(shifts, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, ip, int64(nInput), done)
	loop.Load(tok, ip, inBase)
	loop.Fall(lookup)
	lookup.I(ir.Mul, t, state, int64(nToks))
	lookup.I(ir.Add, t, t, tok)
	lookup.Load(act, t, actBase)
	lookup.Br(ir.LT, act, 0, reduce) // ~38%
	lookup.Fall(shift)
	shift.Store(sp, stack, state)
	shift.I(ir.Add, sp, sp, 1)
	shift.I(ir.And, sp, sp, 1023)
	shift.Mov(state, act)
	shift.I(ir.Add, shifts, shifts, 1)
	shift.I(ir.Add, ip, ip, 1)
	shift.Jmp(next)
	reduce.I(ir.Sub, r, 0, act)
	reduce.Load(ln, r, rlenBase)
	reduce.I(ir.Sub, sp, sp, ln)
	reduce.Br(ir.GE, sp, 0, afterClamp)
	reduce.Fall(clampSp)
	clampSp.Mov(sp, 0)
	clampSp.Fall(afterClamp)
	afterClamp.Load(t, sp, stack)
	afterClamp.I(ir.Mul, t, t, 5)
	afterClamp.I(ir.Add, t, t, r)
	afterClamp.Load(state, t, gotoBase)
	afterClamp.I(ir.Add, reduces, reduces, 1)
	afterClamp.I(ir.Add, ip, ip, 1)
	afterClamp.Jmp(next)
	next.Jmp(loop)
	done.I(ir.Mul, cs, shifts, 8191).I(ir.Add, cs, cs, reduces)
	done.I(ir.Mul, cs, cs, 8191).I(ir.Add, cs, cs, state)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Eqn mirrors the eqn formatter: token dispatch over a large number of
// distinct handlers, giving a static code footprint near the 64K
// instruction cache boundary.  Conditional-move conversion inflates the
// footprint past capacity, reproducing eqn's Figure 11 anomaly (I-cache
// misses hurt the conditional-move model while superblock and full
// predication stay proportional).
func Eqn() *Kernel {
	return &Kernel{Name: "eqn", Paper: "eqn: equation formatter with a large dispatch-heavy code footprint", Build: buildEqn}
}

func buildEqn() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xe42)
	const handlers = 192
	const nInput = 9000
	input := make([]int64, nInput)
	for i := range input {
		input[i] = rng.intn(handlers)
	}
	inBase := p.Words(input...)
	params := make([]int64, handlers*4)
	for i := range params {
		params[i] = 1 + rng.intn(1<<8)
	}
	parBase := p.Words(params...)

	f := p.Func("main")
	i, tok, acc, t1, t2, t3, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(acc, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, i, int64(nInput), done)
	loop.Load(tok, i, inBase)

	// Binary dispatch tree over [0, handlers).
	handlerBlocks := make([]*builder.Blk, handlers)
	for h := 0; h < handlers; h++ {
		handlerBlocks[h] = f.Block(fmt.Sprintf("h%d", h))
	}
	var buildTree func(parent *builder.Blk, lo, hi int)
	buildTree = func(parent *builder.Blk, lo, hi int) {
		if hi-lo == 1 {
			parent.Jmp(handlerBlocks[lo])
			return
		}
		mid := (lo + hi) / 2
		left := f.Block(fmt.Sprintf("d%d_%d", lo, hi))
		right := f.Block(fmt.Sprintf("d%d_%dr", lo, hi))
		parent.Br(ir.GE, tok, int64(mid), right)
		parent.Fall(left)
		buildTree(left, lo, mid)
		buildTree(right, mid, hi)
	}
	dispatch := f.Block("dispatch")
	loop.Fall(dispatch)
	buildTree(dispatch, 0, handlers)

	// Each handler: distinct work dominated by small data-dependent
	// diamonds.  Hyperblock formation if-converts the diamonds, so
	// conditional-move conversion roughly doubles each handler's footprint
	// while superblock and full predication stay near the original size —
	// the ingredient for eqn's instruction-cache anomaly.
	lr := newLCG(0x717)
	emitWork := func(b *builder.Blk, k int) {
		switch k % 5 {
		case 0:
			b.I(ir.Add, t3, t1, lr.intn(1<<10))
		case 1:
			b.I(ir.Xor, t1, t3, lr.intn(1<<10))
		case 2:
			b.I(ir.Mul, t2, t2, 3+lr.intn(5))
		case 3:
			b.I(ir.Shl, t3, t1, 1+lr.intn(3))
		default:
			b.I(ir.Sub, t1, t2, lr.intn(1<<10))
		}
	}
	for h := 0; h < handlers; h++ {
		hb := handlerBlocks[h]
		hb.Load(t1, 0, parBase+int64(4*h))
		hb.Load(t2, 0, parBase+int64(4*h+1))
		cur := hb
		// Six diamonds, each with distinct then/else work.
		for d := 0; d < 6; d++ {
			then := f.Block(fmt.Sprintf("h%d_d%d_t", h, d))
			els := f.Block(fmt.Sprintf("h%d_d%d_e", h, d))
			join := f.Block(fmt.Sprintf("h%d_d%d_j", h, d))
			cur.I(ir.And, t3, t2, 0xffff)
			cur.Br(ir.LT, t3, int64(lr.intn(1<<16)), els)
			cur.Fall(then)
			for k := 0; k < 3; k++ {
				emitWork(then, int(lr.intn(5)))
			}
			then.Jmp(join)
			for k := 0; k < 3; k++ {
				emitWork(els, int(lr.intn(5)))
			}
			els.Fall(join)
			cur = join
		}
		cur.I(ir.Xor, acc, acc, t1)
		cur.I(ir.Add, acc, acc, t2)
		cur.Jmp(next)
	}

	next.I(ir.Add, i, i, 1)
	next.Jmp(loop)
	done.I(ir.And, cs, acc, 0xffffffff)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}
