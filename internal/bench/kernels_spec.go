package bench

import (
	"predication/internal/builder"
	"predication/internal/ir"
)

// Espresso mirrors 008.espresso's cube-intersection inner loops: bitset
// operations over cube words with data-dependent branches on intersection
// results.
func Espresso() *Kernel {
	return &Kernel{Name: "008.espresso", Paper: "SPEC 008.espresso: boolean cube intersection/containment over bitsets", Build: buildEspresso}
}

func buildEspresso() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xe59)
	const pairs, width = 1000, 8
	av := make([]int64, pairs*width)
	bv := make([]int64, pairs*width)
	for i := range av {
		av[i] = rng.intn(1 << 16)
		bv[i] = rng.intn(1 << 16)
		if rng.intn(3) == 0 {
			bv[i] = av[i] // make containment plausible sometimes
		}
	}
	a := p.Words(av...)
	b := p.Words(bv...)

	f := p.Func("main")
	pi, w, base, x, y, z, inter, cover, acc, empty, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	outer := f.Block("outer")
	initp := f.Block("initp")
	inner := f.Block("inner")
	nonzero := f.Block("nonzero")
	l1 := f.Block("l1")
	notcov := f.Block("notcov")
	l2 := f.Block("l2")
	wnext := f.Block("wnext")
	pdone := f.Block("pdone")
	isempty := f.Block("isempty")
	pnext := f.Block("pnext")
	done := f.Block("done")

	entry.Mov(pi, 0).Mov(acc, 0).Mov(empty, 0)
	entry.Fall(outer)
	outer.Br(ir.GE, pi, int64(pairs), done)
	outer.Fall(initp)
	initp.I(ir.Mul, base, pi, int64(width))
	initp.Mov(w, 0).Mov(inter, 0).Mov(cover, 1)
	initp.Fall(inner)
	inner.Br(ir.GE, w, int64(width), pdone)
	inner.I(ir.Add, z, base, w)
	inner.Load(x, z, a)
	inner.Load(y, z, b)
	inner.I(ir.And, z, x, y)
	inner.Br(ir.EQ, z, 0, l1) // intersection empty for this word (~35%)
	inner.Fall(nonzero)
	nonzero.I(ir.Add, inter, inter, 1)
	nonzero.I(ir.Xor, acc, acc, z)
	nonzero.Fall(l1)
	l1.Br(ir.EQ, z, y, l2) // b covered by a in this word?
	l1.Fall(notcov)
	notcov.Mov(cover, 0)
	notcov.Fall(l2)
	l2.Fall(wnext)
	wnext.I(ir.Add, w, w, 1)
	wnext.Jmp(inner)
	pdone.I(ir.Add, acc, acc, cover)
	pdone.Br(ir.NE, inter, 0, pnext)
	pdone.Fall(isempty)
	isempty.I(ir.Add, empty, empty, 1)
	isempty.Fall(pnext)
	pnext.I(ir.Add, pi, pi, 1)
	pnext.Jmp(outer)
	done.I(ir.Mul, cs, acc, 131071).I(ir.Add, cs, cs, empty)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Li mirrors 022.li's evaluator: tag dispatch over linked list nodes with
// small per-tag actions and pointer chasing.
func Li() *Kernel {
	return &Kernel{Name: "022.li", Paper: "SPEC 022.li: lisp evaluator tag dispatch over cons cells", Build: buildLi}
}

func buildLi() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0x111)
	const nodes = 3000
	// Node layout: [tag, val, next] per node, permuted next pointers
	// forming one long cycle (pointer chasing).
	perm := make([]int64, nodes)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := nodes - 1; i > 0; i-- {
		j := rng.intn(int64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	mem := make([]int64, nodes*3)
	for i := 0; i < nodes; i++ {
		mem[3*i] = rng.intn(5) // tag
		mem[3*i+1] = rng.intn(1 << 12)
		next := perm[(i+1)%nodes]
		mem[3*i+2] = next * 3
	}
	base := p.Words(mem...)

	f := p.Func("main")
	cur, tag, val, acc, depth, count, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("eval")
	t0 := f.Block("tag-fixnum")
	t1 := f.Block("tag-cons")
	t2 := f.Block("tag-sym")
	t3 := f.Block("tag-str")
	t4 := f.Block("tag-subr")
	deep := f.Block("deep")
	cont := f.Block("cont")
	done := f.Block("done")

	entry.Mov(cur, 0).Mov(acc, 0).Mov(depth, 0).Mov(count, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, count, 9000, done)
	loop.Load(tag, cur, base)
	loop.Load(val, cur, base+1)
	loop.Br(ir.EQ, tag, 0, t0)
	loop.Br(ir.EQ, tag, 1, t1)
	loop.Br(ir.EQ, tag, 2, t2)
	loop.Br(ir.EQ, tag, 3, t3)
	loop.Fall(t4)
	t0.I(ir.Add, acc, acc, val)
	t0.Jmp(cont)
	t1.I(ir.Add, depth, depth, 1)
	t1.I(ir.Xor, acc, acc, val)
	t1.Jmp(cont)
	t2.I(ir.Sub, acc, acc, val)
	t2.Jmp(cont)
	t3.I(ir.Shl, val, val, 1)
	t3.I(ir.Add, acc, acc, val)
	t3.Jmp(cont)
	t4.Br(ir.LE, depth, 0, cont)
	t4.Fall(deep)
	deep.I(ir.Sub, depth, depth, 1)
	deep.Fall(cont)
	cont.Load(cur, cur, base+2)
	cont.I(ir.Add, count, count, 1)
	cont.Jmp(loop)
	done.I(ir.Mul, cs, acc, 8191).I(ir.Add, cs, cs, depth)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Eqntott mirrors 023.eqntott's dominant cmppt routine: element-wise
// comparison of two vectors of two-bit values with a data-dependent early
// exit and an unpredictable less/greater diamond — the classic
// if-conversion success story.
func Eqntott() *Kernel {
	return &Kernel{Name: "023.eqntott", Paper: "SPEC 023.eqntott: cmppt bit-vector comparison with unpredictable diamond", Build: buildEqntott}
}

func buildEqntott() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xe77)
	const pairs, length = 700, 24
	// Values are 0, 1, or 2 ("don't care", normalized to 0 by cmppt).
	// Arrays agree after normalization until a random first-difference
	// position, but the raw words frequently differ as 2-vs-0, so the
	// normalization diamonds stay data dependent and unpredictable.
	av := make([]int64, pairs*length)
	bv := make([]int64, pairs*length)
	obscure := func(v int64) int64 {
		if v == 0 && rng.intn(2) == 0 {
			return 2
		}
		return v
	}
	for pr := 0; pr < pairs; pr++ {
		d := rng.intn(length) // first difference position
		for i := 0; i < length; i++ {
			v := rng.intn(2)
			av[pr*length+i] = obscure(v)
			if int64(i) < d {
				bv[pr*length+i] = obscure(v)
			} else {
				w := rng.intn(2)
				if int64(i) == d && w == v {
					w = 1 - w
				}
				bv[pr*length+i] = obscure(w)
			}
		}
	}
	a := p.Words(av...)
	b := p.Words(bv...)

	f := p.Func("main")
	pr, i, idx, acc, xv, yv, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
	xs, ys := f.Regs(4), f.Regs(4)

	entry := f.Entry()
	outer := f.Block("outer")
	initp := f.Block("initp")
	inner := f.Block("inner")
	const unroll = 2
	neqs := make([]*builder.Blk, unroll)
	for u := range neqs {
		neqs[u] = f.Block("neq")
	}
	normA := make([]*builder.Blk, unroll)
	normB := make([]*builder.Blk, unroll)
	joinA := make([]*builder.Blk, unroll)
	joinB := make([]*builder.Blk, unroll)
	for u := 0; u < unroll; u++ {
		normA[u] = f.Block("norm-a")
		normB[u] = f.Block("norm-b")
		joinA[u] = f.Block("join-a")
		joinB[u] = f.Block("join-b")
	}
	cmpres := f.Block("cmpres")
	less := f.Block("less")
	greater := f.Block("greater")
	cmpjoin := f.Block("cmpjoin")
	eq := f.Block("eq")
	pnext := f.Block("pnext")
	done := f.Block("done")

	entry.Mov(pr, 0).Mov(acc, 0)
	entry.Fall(outer)
	outer.Br(ir.GE, pr, int64(pairs), done)
	outer.Fall(initp)
	initp.I(ir.Mul, idx, pr, int64(length))
	initp.Mov(i, 0)
	initp.Fall(inner)
	// Inner compare loop, unrolled two ways.  Per element, the don't-care
	// normalization diamonds ("if (aa == 2) aa = 0") branch on essentially
	// random data — the unpredictable branches that dominate eqntott's
	// superblock misprediction count and that if-conversion eliminates.
	// The mismatch exits themselves are rarely taken and get combined.
	inner.Br(ir.GE, i, int64(length), eq)
	cur := inner
	for u := 0; u < unroll; u++ {
		cur.I(ir.Add, xs[u], idx, i)
		cur.Load(ys[u], xs[u], b+int64(u))
		cur.Load(xs[u], xs[u], a+int64(u))
		cur.Br(ir.NE, xs[u], 2, joinA[u])
		cur.Fall(normA[u])
		normA[u].Mov(xs[u], 0)
		normA[u].Fall(joinA[u])
		joinA[u].Br(ir.NE, ys[u], 2, joinB[u])
		joinA[u].Fall(normB[u])
		normB[u].Mov(ys[u], 0)
		normB[u].Fall(joinB[u])
		joinB[u].Br(ir.NE, xs[u], ys[u], neqs[u])
		cur = joinB[u] // the next unrolled element continues here
	}
	cur.I(ir.Add, i, i, int64(unroll))
	cur.Jmp(inner)
	// All mismatch exits funnel into one less/greater hammock, ~50/50 on
	// random data: unpredictable for the BTB, trivially if-converted with
	// predication.
	for u := 0; u < unroll; u++ {
		neqs[u].Mov(xv, xs[u])
		neqs[u].Mov(yv, ys[u])
		neqs[u].Jmp(cmpres)
	}
	cmpres.Br(ir.LT, xv, yv, less)
	cmpres.Fall(greater)
	greater.I(ir.Add, acc, acc, 1)
	greater.Fall(cmpjoin)
	less.I(ir.Sub, acc, acc, 1)
	less.Fall(cmpjoin)
	cmpjoin.Jmp(pnext)
	eq.I(ir.Xor, acc, acc, 3)
	eq.Fall(pnext)
	pnext.I(ir.Add, pr, pr, 1)
	pnext.Jmp(outer)
	done.I(ir.Mul, cs, acc, 1000003)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Compress mirrors 026.compress: an LZW-style hash-table probe loop whose
// table exceeds the 64K data cache, so the speculative loads introduced by
// predication raise memory traffic (the Figure 11 effect).
func Compress() *Kernel {
	return &Kernel{Name: "026.compress", Paper: "SPEC 026.compress: LZW hash probing with a larger-than-cache table", Build: buildCompress}
}

func buildCompress() *ir.Program {
	const tabBits = 14
	const tabSize = 1 << tabBits // 16K words x 2 tables = 256KB > 64KB cache
	p := builder.New(1 << 18)
	rng := newLCG(0xc03)
	const n = 5000
	data := make([]int64, n)
	for i := range data {
		// A 64-symbol alphabet makes roughly half the digrams repeats:
		// the hash-hit branch is data dependent and unpredictable, as in
		// real LZW compression of text.
		data[i] = rng.intn(64)
	}
	buf := p.Words(data...)
	keyTab := p.Alloc(tabSize)
	codeTab := p.Alloc(tabSize)

	f := p.Func("main")
	t, c, w, key, h, h2, k, k2, nextCode, acc, cs, tmp :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(),
		f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	hit := f.Block("hit")
	probe2 := f.Block("probe2")
	hit2 := f.Block("hit2")
	emit := f.Block("emit")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(t, 1).Mov(nextCode, 256).Mov(acc, 0)
	entry.Load(w, 0, buf)
	entry.Fall(loop)
	// Two-level hash probe (primary slot, then a fixed secondary slot,
	// then evict-and-insert).  The probe is acyclic, so if-conversion can
	// absorb the hit/miss diamonds; the table is four times the data
	// cache, so the speculative probe loads introduced by predication add
	// real memory traffic — the compress effect in Figure 11.
	loop.Br(ir.GE, t, int64(n), done)
	loop.Load(c, t, buf)
	loop.I(ir.Shl, key, w, 8)
	loop.I(ir.Or, key, key, c)
	loop.I(ir.Add, key, key, 1) // keys are nonzero (0 marks empty slots)
	loop.I(ir.Mul, h, key, 40503)
	loop.I(ir.And, h, h, int64(tabSize-1))
	loop.Load(k, h, keyTab)
	loop.Br(ir.EQ, k, key, hit) // ~45%
	loop.Fall(probe2)
	probe2.I(ir.Mul, h2, key, 2654435761)
	probe2.I(ir.And, h2, h2, int64(tabSize-1))
	probe2.Load(k2, h2, keyTab)
	probe2.Br(ir.NE, k2, key, emit)
	probe2.Fall(hit2)
	hit2.Load(w, h2, codeTab)
	hit2.Jmp(next)
	hit.Load(w, h, codeTab)
	hit.Jmp(next)
	// Miss: evict into the primary slot unconditionally.
	emit.Store(h, keyTab, key)
	emit.Store(h, codeTab, nextCode)
	emit.I(ir.Add, nextCode, nextCode, 1)
	emit.I(ir.Mul, tmp, acc, 31)
	emit.I(ir.Add, acc, tmp, w)
	emit.Mov(w, c)
	emit.Fall(next)
	next.I(ir.Add, t, t, 1)
	next.Jmp(loop)
	done.I(ir.Mul, cs, acc, 131).I(ir.Add, cs, cs, nextCode)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Sc mirrors 072.sc's formula evaluation: a long loop-carried dependence
// chain updated through data-dependent conditionals.  Conditional-move
// conversion serializes the accumulator updates, lengthening the critical
// path — the paper's one benchmark where the conditional-move model falls
// below superblock.
func Sc() *Kernel {
	return &Kernel{Name: "072.sc", Paper: "SPEC 072.sc: spreadsheet recalculation with a serial accumulator chain", Build: buildSc}
}

func buildSc() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0x5cc)
	const n = 4000
	ops := make([]int64, n)
	vals := make([]int64, n)
	for i := range ops {
		ops[i] = rng.intn(4)
		vals[i] = rng.intn(1 << 10)
	}
	opBase := p.Words(ops...)
	valBase := p.Words(vals...)

	f := p.Func("main")
	i, op, v, acc, t, cs := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	o0 := f.Block("op-add")
	o1 := f.Block("op-mul")
	o2 := f.Block("op-max")
	omaxSet := f.Block("op-max-set")
	o3 := f.Block("op-sub")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(acc, 1)
	entry.Fall(loop)
	loop.Br(ir.GE, i, int64(n), done)
	loop.Load(op, i, opBase)
	loop.Load(v, i, valBase)
	loop.Br(ir.EQ, op, 0, o0)
	loop.Br(ir.EQ, op, 1, o1)
	loop.Br(ir.EQ, op, 2, o2)
	loop.Fall(o3)
	o0.I(ir.Add, acc, acc, v)
	o0.Jmp(next)
	o1.I(ir.Mul, t, acc, 3)
	o1.I(ir.Add, acc, t, v)
	o1.I(ir.And, acc, acc, 0xffffff)
	o1.Jmp(next)
	o2.Br(ir.GE, acc, v, next)
	o2.Fall(omaxSet)
	omaxSet.Mov(acc, v)
	omaxSet.Fall(next)
	o3.I(ir.Sub, acc, acc, v)
	o3.I(ir.Xor, acc, acc, 5)
	o3.Jmp(next)
	next.I(ir.Add, i, i, 1)
	next.Jmp(loop)
	done.I(ir.Mul, cs, acc, 65599)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Qsort mirrors the Unix qsort utility: an iterative quicksort whose
// partition loop branches on random data (highly unpredictable), making
// the conditional-swap diamond an ideal if-conversion target.
func Qsort() *Kernel {
	return &Kernel{Name: "qsort", Paper: "Unix qsort: quicksort partitioning with unpredictable compare/swap", Build: buildQsort}
}

func buildQsort() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0x450)
	const n = 600
	arr := make([]int64, n)
	for i := range arr {
		arr[i] = rng.intn(1 << 20)
	}
	a := p.Words(arr...)
	stack := p.Alloc(4 * n)

	f := p.Func("main")
	sp, lo, hi, pivot, i, j, v, u, t, acc, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	outer := f.Block("outer")
	pop := f.Block("pop")
	part := f.Block("part")
	swap := f.Block("swap")
	pskip := f.Block("pskip")
	endpart := f.Block("endpart")
	sumInit := f.Block("sum-init")
	sum := f.Block("sum")
	done := f.Block("done")

	entry.Mov(sp, 2)
	entry.Store(0, stack, 0)
	entry.Store(0, stack+1, int64(n-1))
	entry.Fall(outer)
	outer.Br(ir.EQ, sp, 0, sumInit)
	outer.Fall(pop)
	pop.I(ir.Sub, sp, sp, 2)
	pop.I(ir.Add, t, sp, 0)
	pop.Load(lo, t, stack)
	pop.Load(hi, t, stack+1)
	pop.Br(ir.GE, lo, hi, outer)
	pop.Load(pivot, hi, a)
	pop.I(ir.Sub, i, lo, 1)
	pop.Mov(j, lo)
	pop.Fall(part)
	part.Br(ir.GE, j, hi, endpart)
	part.Load(v, j, a)
	part.Br(ir.GT, v, pivot, pskip) // ~50/50 on random data
	part.Fall(swap)
	swap.I(ir.Add, i, i, 1)
	swap.Load(u, i, a)
	swap.Store(i, a, v)
	swap.Store(j, a, u)
	swap.Fall(pskip)
	pskip.I(ir.Add, j, j, 1)
	pskip.Jmp(part)
	endpart.I(ir.Add, i, i, 1)
	endpart.Load(u, i, a)
	endpart.Load(v, hi, a)
	endpart.Store(i, a, v)
	endpart.Store(hi, a, u)
	// push (lo, i-1) and (i+1, hi)
	endpart.I(ir.Sub, t, i, 1)
	endpart.Store(sp, stack, lo)
	endpart.Store(sp, stack+1, t)
	endpart.I(ir.Add, t, i, 1)
	endpart.Store(sp, stack+2, t)
	endpart.Store(sp, stack+3, hi)
	endpart.I(ir.Add, sp, sp, 4)
	endpart.Jmp(outer)
	sumInit.Mov(i, 0).Mov(acc, 0)
	sumInit.Fall(sum)
	sum.Br(ir.GE, i, int64(n), done)
	sum.Load(v, i, a)
	sum.I(ir.Mul, t, v, i)
	sum.I(ir.Add, acc, acc, t)
	sum.I(ir.Add, i, i, 1)
	sum.Jmp(sum)
	done.I(ir.Xor, cs, acc, 0x5a5a)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}
