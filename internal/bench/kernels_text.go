package bench

import (
	"predication/internal/builder"
	"predication/internal/ir"
)

// genText produces deterministic pseudo-text: words of lowercase letters
// separated by spaces, tabs and newlines.
func genText(rng *lcg, n int) string {
	sb := make([]byte, 0, n)
	for len(sb) < n {
		r := rng.intn(100)
		switch {
		case r < 15:
			sb = append(sb, ' ')
		case r < 18:
			sb = append(sb, '\n')
		case r < 20:
			sb = append(sb, '\t')
		default:
			sb = append(sb, byte('a'+rng.intn(26)))
		}
	}
	return string(sb)
}

// Wc mirrors the Unix wc utility's inner loop (the paper's Figure 5
// example): per-character classification through a dense cluster of tiny
// basic blocks, with roughly 40% of the dynamic instructions being
// branches.
func Wc() *Kernel {
	return &Kernel{Name: "wc", Paper: "Unix wc: character/word/line counting, branch-dominated tiny blocks", Build: buildWc}
}

func buildWc() *ir.Program {
	p := builder.New(1 << 16)
	rng := newLCG(0x5eed)
	text := genText(rng, 6000)
	buf := p.Bytes(text)
	n := int64(len(text))

	f := p.Func("main")
	i, c, nc, nw, nl, inw, nv, nh, nt, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	hdr := f.Block("hdr")
	body := f.Block("body")
	nlb := f.Block("nl")
	va := f.Block("vowel-a")
	vb2 := f.Block("vowel-e")
	vc := f.Block("vowel-i")
	vhit := f.Block("vowel-hit")
	vjoin := f.Block("vowel-join")
	hi := f.Block("upper-half")
	hjoin := f.Block("half-join")
	tb := f.Block("tail-char")
	tjoin := f.Block("tail-join")
	l2 := f.Block("ws-space")
	l3 := f.Block("ws-nl")
	l4 := f.Block("ws-tab")
	notws := f.Block("notws")
	startw := f.Block("startw")
	isws := f.Block("isws")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(nc, 0).Mov(nw, 0).Mov(nl, 0).Mov(inw, 0)
	entry.Mov(nv, 0).Mov(nh, 0).Mov(nt, 0)
	entry.Fall(hdr)
	hdr.Br(ir.GE, i, n, done)
	hdr.Fall(body)
	body.Load(c, i, buf).I(ir.Add, nc, nc, 1)
	body.Br(ir.NE, c, int64('\n'), va)
	body.Fall(nlb)
	nlb.I(ir.Add, nl, nl, 1)
	nlb.Fall(va)
	// Independent classification diamonds (vowels, upper-half letters,
	// tail letters): these convert to parallel predicate defines, the
	// profitable case for predication, alongside the sequential
	// word-state chain below.
	va.Br(ir.EQ, c, int64('a'), vhit)
	va.Fall(vb2)
	vb2.Br(ir.EQ, c, int64('e'), vhit)
	vb2.Fall(vc)
	vc.Br(ir.NE, c, int64('i'), vjoin)
	vc.Fall(vhit)
	vhit.I(ir.Add, nv, nv, 1)
	vhit.Fall(vjoin)
	vjoin.Br(ir.LE, c, int64('m'), hjoin)
	vjoin.Fall(hi)
	hi.I(ir.Add, nh, nh, 1)
	hi.Fall(hjoin)
	hjoin.Br(ir.LE, c, int64('t'), tjoin)
	hjoin.Fall(tb)
	tb.I(ir.Add, nt, nt, 1)
	tb.Fall(tjoin)
	tjoin.Fall(l2)
	l2.Br(ir.EQ, c, int64(' '), isws)
	l2.Fall(l3)
	l3.Br(ir.EQ, c, int64('\n'), isws)
	l3.Fall(l4)
	l4.Br(ir.EQ, c, int64('\t'), isws)
	l4.Fall(notws)
	notws.Br(ir.NE, inw, 0, next)
	notws.Fall(startw)
	startw.Mov(inw, 1).I(ir.Add, nw, nw, 1)
	startw.Jmp(next)
	isws.Mov(inw, 0)
	isws.Fall(next)
	next.I(ir.Add, i, i, 1)
	next.Jmp(hdr)
	done.I(ir.Mul, cs, nc, 1000003).I(ir.Add, cs, cs, nw)
	done.I(ir.Mul, cs, cs, 4093).I(ir.Add, cs, cs, nl)
	done.I(ir.Mul, cs, cs, 4093).I(ir.Add, cs, cs, nv)
	done.I(ir.Mul, cs, cs, 4093).I(ir.Add, cs, cs, nh)
	done.I(ir.Mul, cs, cs, 4093).I(ir.Add, cs, cs, nt)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Grep mirrors the grep scan loop (the paper's Figure 6 example): a tight
// loop dominated by several very-unlikely-taken exit branches (end of
// input, newline, first pattern character), the canonical target for
// branch combining and OR-type predicate defines.
func Grep() *Kernel {
	return &Kernel{Name: "grep", Paper: "Unix grep: multi-exit scan loop with highly biased exits", Build: buildGrep}
}

func buildGrep() *ir.Program {
	p := builder.New(1 << 16)
	rng := newLCG(0x9e3)
	// Text with rare 'q' (pattern head) and rare newlines; NUL terminated.
	sb := make([]byte, 0, 8192)
	for len(sb) < 8190 {
		r := rng.intn(1000)
		switch {
		case r < 12:
			sb = append(sb, 'q') // pattern head candidate
		case r < 30:
			sb = append(sb, '\n')
		case r < 170:
			sb = append(sb, ' ')
		default:
			sb = append(sb, byte('a'+rng.intn(16))) // 'a'..'p': never 'q' or 'z'
		}
	}
	// Plant a handful of true matches "qz".
	for k := 0; k < 6; k++ {
		pos := int(rng.intn(int64(len(sb) - 2)))
		sb[pos], sb[pos+1] = 'q', 'z'
	}
	sb = append(sb, 0)
	buf := p.Bytes(string(sb))

	f := p.Func("main")
	i, c, d, c1, lines, matches, acc, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("scan")
	nlb := f.Block("newline")
	nlb2 := f.Block("newline2")
	maybe := f.Block("maybe")
	maybe2 := f.Block("maybe2")
	hit := f.Block("hit")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(lines, 0).Mov(matches, 0).Mov(acc, 0)
	entry.Fall(loop)
	// The scan loop handles two characters per iteration (the compiler's
	// unrolling of grep's hot loop), giving six rarely taken exit branches
	// per iteration — the Figure 6 shape.
	loop.Load(c, i, buf)
	loop.Load(d, i, buf+1)
	loop.Br(ir.EQ, c, 0, done)           // end of input (taken once)
	loop.Br(ir.EQ, c, int64('\n'), nlb)  // ~1.8%
	loop.Br(ir.EQ, c, int64('q'), maybe) // ~1.2%
	loop.Br(ir.EQ, d, 0, done)
	loop.Br(ir.EQ, d, int64('\n'), nlb2)
	loop.Br(ir.EQ, d, int64('q'), maybe2)
	loop.I(ir.Xor, acc, acc, c)
	loop.I(ir.Xor, acc, acc, d)
	loop.I(ir.Add, i, i, 2)
	loop.Jmp(loop)
	nlb.I(ir.Add, lines, lines, 1)
	nlb.I(ir.Add, i, i, 1)
	nlb.Jmp(loop)
	nlb2.I(ir.Xor, acc, acc, c)
	nlb2.I(ir.Add, lines, lines, 1)
	nlb2.I(ir.Add, i, i, 2)
	nlb2.Jmp(loop)
	maybe.I(ir.Add, i, i, 1)
	maybe.Mov(c1, d)
	maybe.Fall(hit)
	maybe2.I(ir.Xor, acc, acc, c)
	maybe2.I(ir.Add, i, i, 2)
	maybe2.Load(c1, i, buf)
	maybe2.Fall(hit)
	hit.Br(ir.NE, c1, int64('z'), loop)
	hit.I(ir.Add, matches, matches, 1)
	hit.I(ir.Add, i, i, 1)
	hit.Jmp(loop)
	done.I(ir.Mul, cs, lines, 65599).I(ir.Add, cs, cs, matches)
	done.I(ir.Mul, cs, cs, 65599).I(ir.Add, cs, cs, acc)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}

// Cmp mirrors the Unix cmp utility: compare two buffers that differ only
// near the end.  The loop is unrolled four ways (as a compiler would) with
// almost-never-taken mismatch exits, giving the extreme branch reduction
// the paper reports for cmp in Table 3.
func Cmp() *Kernel {
	return &Kernel{Name: "cmp", Paper: "Unix cmp: buffer comparison, near-never-taken mismatch exits", Build: buildCmp}
}

func buildCmp() *ir.Program {
	p := builder.New(1 << 17)
	rng := newLCG(0xc41)
	n := 20000
	words := make([]int64, n)
	for i := range words {
		words[i] = rng.intn(256)
	}
	a := p.Words(words...)
	// Second buffer identical except one word near the end.
	words2 := append([]int64(nil), words...)
	words2[n-7] ^= 0x55
	b := p.Words(words2...)

	const unroll = 8
	f := p.Func("main")
	i, va, vb, pos, cs := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
	t := f.Regs(2 * unroll)
	accs := f.Regs(4) // rotating accumulators keep the checksum off the critical path

	entry := f.Entry()
	loop := f.Block("loop")
	diffs := make([]*builder.Blk, unroll)
	for u := range diffs {
		diffs[u] = f.Block("diff")
	}
	locate := f.Block("locate")
	equal := f.Block("equal")
	out := f.Block("out")

	entry.Mov(i, 0)
	for _, a := range accs {
		entry.Mov(a, 0)
	}
	entry.Fall(loop)
	// Eight-way unrolled comparison with mismatch exits (cmp's inner loop
	// unrolls deeply: the exits are essentially never taken, giving the
	// extreme branch reduction of Table 3).  The mismatch path never reads
	// the accumulators, so the exits stay combinable even though the
	// running XORs are updated between them.
	for u := 0; u < unroll; u++ {
		loop.Load(t[2*u], i, a+int64(u))
		loop.Load(t[2*u+1], i, b+int64(u))
		loop.Br(ir.NE, t[2*u], t[2*u+1], diffs[u])
		loop.I(ir.Xor, accs[u%4], accs[u%4], t[2*u])
	}
	loop.I(ir.Add, i, i, int64(unroll))
	loop.Br(ir.LT, i, int64(n), loop)
	loop.Jmp(equal)
	// Per-unroll mismatch landing pads record the exact index.
	for u := 0; u < unroll; u++ {
		diffs[u].I(ir.Add, pos, i, int64(u))
		diffs[u].Jmp(locate)
	}
	locate.Load(va, pos, a)
	locate.Load(vb, pos, b)
	locate.I(ir.Mul, cs, pos, 2654435761)
	locate.I(ir.Xor, cs, cs, va)
	locate.I(ir.Add, cs, cs, vb)
	locate.Jmp(out)
	equal.I(ir.Xor, cs, accs[0], accs[1])
	equal.I(ir.Xor, cs, cs, accs[2])
	equal.I(ir.Xor, cs, cs, accs[3])
	equal.I(ir.Mul, cs, cs, 16777619)
	equal.I(ir.Add, cs, cs, 1)
	equal.Fall(out)
	out.Store(0, CheckAddr, cs)
	out.Halt()
	return p.Program()
}

// Cccp mirrors the GNU C preprocessor's scanning loop: a character-driven
// state machine (normal / comment / string) with moderately predictable
// state branches and identifier counting.
func Cccp() *Kernel {
	return &Kernel{Name: "cccp", Paper: "GNU cccp: lexical scanning state machine over source text", Build: buildCccp}
}

func buildCccp() *ir.Program {
	p := builder.New(1 << 16)
	rng := newLCG(0xcc9)
	// Pseudo C source: identifiers, punctuation, occasional comments and
	// strings.
	sb := make([]byte, 0, 7000)
	for len(sb) < 6980 {
		r := rng.intn(100)
		switch {
		case r < 4:
			sb = append(sb, '/', '*')
			for k := int64(0); k < 6+rng.intn(20); k++ {
				sb = append(sb, byte('a'+rng.intn(26)))
			}
			sb = append(sb, '*', '/')
		case r < 8:
			sb = append(sb, '"')
			for k := int64(0); k < 3+rng.intn(10); k++ {
				sb = append(sb, byte('a'+rng.intn(26)))
			}
			sb = append(sb, '"')
		case r < 20:
			sb = append(sb, ' ')
		case r < 26:
			sb = append(sb, ';')
		case r < 30:
			sb = append(sb, '\n')
		default:
			sb = append(sb, byte('a'+rng.intn(26)))
		}
	}
	sb = append(sb, 0)
	buf := p.Bytes(string(sb))

	f := p.Func("main")
	i, c, c1, ids, strs, cmts, lines, semis, cs :=
		f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	nSlash := f.Block("n-slash")
	skipC := f.Block("skip-comment")
	skipCEnd := f.Block("skip-comment-end")
	skipCNext := f.Block("skip-comment-next")
	skipS := f.Block("skip-string")
	sLoop := f.Block("string-loop")
	nIdent := f.Block("n-ident")
	iJoin := f.Block("ident-join")
	nNl := f.Block("n-nl")
	nlJoin := f.Block("nl-join")
	nSemi := f.Block("n-semi")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(ids, 0).Mov(strs, 0).Mov(cmts, 0).Mov(lines, 0).Mov(semis, 0)
	entry.Fall(loop)
	// Main scan: classification diamonds plus two rare exits into inner
	// skip loops (comment and string literals), the way cccp's scanner is
	// actually structured.  The skip loops are separate natural loops, so
	// hyperblock formation leaves them out of the main loop's hyperblock.
	loop.Load(c, i, buf)
	loop.Br(ir.EQ, c, 0, done)
	loop.Br(ir.EQ, c, int64('/'), nSlash) // ~2%
	loop.Br(ir.EQ, c, int64('"'), skipS)  // ~2%
	loop.Br(ir.LT, c, int64('a'), iJoin)  // ~30%: not an identifier char
	loop.Fall(nIdent)
	nIdent.I(ir.Add, ids, ids, 1)
	nIdent.Fall(iJoin)
	iJoin.Br(ir.NE, c, int64('\n'), nlJoin)
	iJoin.Fall(nNl)
	nNl.I(ir.Add, lines, lines, 1)
	nNl.Fall(nlJoin)
	nlJoin.Br(ir.NE, c, int64(';'), next)
	nlJoin.Fall(nSemi)
	nSemi.I(ir.Add, semis, semis, 1)
	nSemi.Fall(next)
	next.I(ir.Add, i, i, 1)
	next.Jmp(loop)

	// Comment: "/" must be followed by "*", then skip to the closing "*/".
	nSlash.Load(c1, i, buf+1)
	nSlash.Br(ir.NE, c1, int64('*'), next)
	nSlash.I(ir.Add, cmts, cmts, 1)
	nSlash.I(ir.Add, i, i, 2)
	nSlash.Fall(skipC)
	skipC.Load(c1, i, buf)
	skipC.Br(ir.EQ, c1, 0, done)
	skipC.Br(ir.EQ, c1, int64('*'), skipCEnd)
	skipC.Fall(skipCNext)
	skipCNext.I(ir.Add, i, i, 1)
	skipCNext.Jmp(skipC)
	skipCEnd.Load(c1, i, buf+1)
	skipCEnd.Br(ir.NE, c1, int64('/'), skipCNext)
	skipCEnd.I(ir.Add, i, i, 2)
	skipCEnd.Jmp(loop)

	// String literal: skip to the closing quote.
	skipS.I(ir.Add, strs, strs, 1)
	skipS.I(ir.Add, i, i, 1)
	skipS.Fall(sLoop)
	sLoop.Load(c1, i, buf)
	sLoop.Br(ir.EQ, c1, 0, done)
	sLoop.Br(ir.EQ, c1, int64('"'), next)
	sLoop.I(ir.Add, i, i, 1)
	sLoop.Jmp(sLoop)

	done.I(ir.Mul, cs, ids, 131).I(ir.Add, cs, cs, strs)
	done.I(ir.Mul, cs, cs, 131).I(ir.Add, cs, cs, cmts)
	done.I(ir.Mul, cs, cs, 131).I(ir.Add, cs, cs, lines)
	done.I(ir.Mul, cs, cs, 131).I(ir.Add, cs, cs, semis)
	done.Store(0, CheckAddr, cs)
	done.Halt()
	return p.Program()
}
