// Package bench provides the benchmark kernels used to reproduce the
// paper's evaluation.
//
// The paper measures seven SPEC-92 programs (008.espresso, 022.li,
// 023.eqntott, 026.compress, 052.alvinn, 056.ear, 072.sc) and eight Unix
// utilities (cccp, cmp, eqn, grep, lex, qsort, wc, yacc) compiled by the
// IMPACT C compiler.  Neither the benchmark sources nor the compiler front
// end are available here, so each benchmark is substituted by a synthetic
// kernel written directly in the IR that mirrors the original program's
// documented control character — branch density, predictability, path
// balance, memory footprint — with deterministic pseudo-random inputs.
// DESIGN.md records the substitution rationale per benchmark.
//
// Every kernel stores a checksum of its computation at word CheckAddr
// before halting.  The checksum must be identical across all compilation
// models and machine configurations; the test suite enforces this.
package bench

import (
	"fmt"

	"predication/internal/ir"
)

// CheckAddr is the memory word where every kernel deposits its checksum.
const CheckAddr int64 = 8

// Kernel is one benchmark program generator.
type Kernel struct {
	// Name matches the paper's benchmark name.
	Name string
	// Paper describes the original program this kernel substitutes for.
	Paper string
	// Build constructs a fresh program (independent data and code).
	Build func() *ir.Program
}

// All returns the fifteen kernels in the paper's reporting order.
func All() []*Kernel {
	return []*Kernel{
		Espresso(), Li(), Eqntott(), Compress(), Alvinn(), Ear(), Sc(),
		Cccp(), Cmp(), Eqn(), Grep(), Lex(), Qsort(), Wc(), Yacc(),
	}
}

// ByName returns the named kernel.
func ByName(name string) (*Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown kernel %q", name)
}

// lcg is a deterministic pseudo-random generator for input data (constants
// from Numerical Recipes).  Benchmarks must be reproducible run to run, so
// no external entropy is used.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int64) int64 { return int64(l.next() % uint64(n)) }

// float returns a value in [0, 1).
func (l *lcg) float() float64 { return float64(l.next()%1_000_000) / 1_000_000 }
