package bench

import (
	"testing"

	"predication/internal/emu"
)

// TestKernelsRunAndChecksum verifies every kernel builds a valid program,
// runs to completion on the emulator, and produces a nonzero checksum.
func TestKernelsRunAndChecksum(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p := k.Build()
			if err := p.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res, err := emu.Run(p, emu.Options{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			sum := res.Word(CheckAddr)
			if sum == 0 {
				t.Fatalf("checksum is zero (kernel likely broken)")
			}
			t.Logf("%s: %d dynamic instructions, checksum %#x", k.Name, res.Steps, sum)
			if res.Steps < 10_000 {
				t.Errorf("kernel too small: %d dynamic instructions", res.Steps)
			}
			if res.Steps > 3_000_000 {
				t.Errorf("kernel too large: %d dynamic instructions", res.Steps)
			}
		})
	}
}

// TestKernelsDeterministic ensures two builds of the same kernel produce
// identical results (LCG-driven inputs, no external entropy).
func TestKernelsDeterministic(t *testing.T) {
	for _, k := range All() {
		p1, p2 := k.Build(), k.Build()
		r1, err1 := emu.Run(p1, emu.Options{})
		r2, err2 := emu.Run(p2, emu.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", k.Name, err1, err2)
		}
		if r1.Word(CheckAddr) != r2.Word(CheckAddr) || r1.Steps != r2.Steps {
			t.Errorf("%s: nondeterministic build", k.Name)
		}
	}
}
