package bench

import (
	"testing"

	"predication/internal/cfg"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

// profileOf runs a kernel with profiling.
func profileOf(t *testing.T, p *ir.Program) (*cfg.Profile, *emu.Result) {
	t.Helper()
	p.Normalize()
	prof := cfg.NewProfile()
	res, err := emu.Run(p, emu.Options{Profile: prof, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return prof, res
}

// branchFraction computes the dynamic branch fraction of a trace.
func branchFraction(trace []emu.Event) float64 {
	br := 0
	for _, ev := range trace {
		if ev.In.Op.IsBranch() {
			br++
		}
	}
	return float64(br) / float64(len(trace))
}

// TestWcCharacter: the paper describes wc as branch dominated ("an
// instruction stream consisting of 40% branches" motivates §1; the wc
// loop has 14 branches in 34 instructions).  Our kernel must be similarly
// branch heavy.
func TestWcCharacter(t *testing.T) {
	_, res := profileOf(t, Wc().Build())
	if f := branchFraction(res.Trace); f < 0.30 {
		t.Errorf("wc branch fraction %.2f, want >= 0.30", f)
	}
}

// TestGrepCharacter: grep's exits must be rarely taken (each below the
// branch-combining threshold) so the Figure 6 transformations apply.
func TestGrepCharacter(t *testing.T) {
	p := Grep().Build()
	prof, _ := profileOf(t, p)
	rare := 0
	for _, f := range p.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			for _, in := range b.Instrs {
				if !in.Op.IsCondBranch() {
					continue
				}
				prob, n := prof.TakenProb(in)
				if n > 1000 && prob < 0.05 {
					rare++
				}
			}
		}
	}
	if rare < 4 {
		t.Errorf("grep needs several rarely-taken exits, found %d", rare)
	}
}

// TestFPKernelsAreBranchLight: alvinn and ear stand in for the paper's
// floating-point codes, where predication has little to work on.
func TestFPKernelsAreBranchLight(t *testing.T) {
	for _, k := range []*Kernel{Alvinn(), Ear()} {
		_, res := profileOf(t, k.Build())
		if f := branchFraction(res.Trace); f > 0.30 {
			t.Errorf("%s branch fraction %.2f, want light", k.Name, f)
		}
		// And they must actually use floating point.
		fp := 0
		for _, ev := range res.Trace {
			if ev.In.Op.IsFloat() {
				fp++
			}
		}
		if float64(fp)/float64(len(res.Trace)) < 0.15 {
			t.Errorf("%s floating-point fraction too low", k.Name)
		}
	}
}

// TestQsortSorts: the qsort kernel must actually sort (the checksum would
// hide a broken partition only improbably, but check directly).
func TestQsortSorts(t *testing.T) {
	p := Qsort().Build()
	res, err := emu.Run(p, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The array lives at the first allocation (word 16), 600 words.
	prev := int64(-1)
	for i := int64(16); i < 16+600; i++ {
		if res.Word(i) < prev {
			t.Fatalf("array not sorted at %d: %d < %d", i, res.Word(i), prev)
		}
		prev = res.Word(i)
	}
}

// TestCompressTableExceedsCache: the Figure 11 compress effect requires a
// working set beyond the 64K data cache — observable as a high data-cache
// miss count even for the unoptimized program.
func TestCompressTableExceedsCache(t *testing.T) {
	p := Compress().Build()
	p.Normalize()
	p.AssignAddresses()
	res, err := emu.Run(p, emu.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Simulate(p, res.Trace, machine.Issue8Br1Cache())
	if st.DCacheMisses < 1000 {
		t.Errorf("compress D-cache misses %d; the hash tables should not fit", st.DCacheMisses)
	}
}

// TestEqnFootprint: eqn's static code must be large (the I-cache story).
func TestEqnFootprint(t *testing.T) {
	p := Eqn().Build()
	if n := p.NumInstrs(); n < 8000 {
		t.Errorf("eqn static size %d instructions, want a large footprint", n)
	}
}

// TestScSerialChain: sc's accumulator must be written on (nearly) every
// iteration, giving the loop-carried chain that penalizes conditional
// moves.
func TestScSerialChain(t *testing.T) {
	_, res := profileOf(t, Sc().Build())
	// Count writes to the accumulator register (r4 by construction order:
	// i, op, v, acc...).  Identify it as the most-written register.
	writes := map[ir.Reg]int{}
	for _, ev := range res.Trace {
		if d := ev.In.DefReg(); d != ir.RNone && !ev.Nullified() {
			writes[d]++
		}
	}
	max := 0
	for _, n := range writes {
		if n > max {
			max = n
		}
	}
	if max < 4000 {
		t.Errorf("sc accumulator written %d times, want >= one per iteration", max)
	}
}

// TestKernelNames: paper ordering and lookup.
func TestKernelNames(t *testing.T) {
	want := []string{"008.espresso", "022.li", "023.eqntott", "026.compress",
		"052.alvinn", "056.ear", "072.sc",
		"cccp", "cmp", "eqn", "grep", "lex", "qsort", "wc", "yacc"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("%d kernels", len(got))
	}
	for i, k := range got {
		if k.Name != want[i] {
			t.Errorf("kernel %d = %s, want %s", i, k.Name, want[i])
		}
		if k.Paper == "" {
			t.Errorf("%s: missing substitution description", k.Name)
		}
	}
	if _, err := ByName("wc"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown kernel accepted")
	}
}
