// Package regalloc provides register pressure analysis and a linear-scan
// register allocator for the predication IR.
//
// The paper assumes an infinite register file (§4.1) but argues
// qualitatively that partial predication "requires a larger number of
// registers to hold intermediate values" than full predication (§1):
// every converted predicated instruction computes into a renamed
// temporary before a conditional move commits it.  This package makes the
// claim measurable (MaxLive/Pressure) and provides the substrate a real
// port would need: allocation of virtual registers onto a finite machine
// register file with spilling.
package regalloc

import (
	"predication/internal/cfg"
	"predication/internal/ir"
)

// Pressure reports register demand for one function.
type Pressure struct {
	// MaxLive is the largest number of integer/FP virtual registers
	// simultaneously live at any instruction boundary.
	MaxLive int
	// MaxLivePreds is the same for predicate registers.
	MaxLivePreds int
	// Virtual counts allocated virtual registers (a static measure of
	// renaming demand).
	Virtual int
}

// Analyze computes register pressure for a function.
func Analyze(f *ir.Func) Pressure {
	g := cfg.NewGraph(f)
	lv := cfg.ComputeLiveness(g)
	pr := Pressure{Virtual: int(f.NextReg) - 1}
	count := func(s cfg.BitSet) int {
		n := 0
		for _, w := range s {
			for ; w != 0; w &= w - 1 {
				n++
			}
		}
		return n
	}
	for _, b := range f.LiveBlocks(nil) {
		if !g.Reachable(b.ID) {
			continue
		}
		// Walk backwards from live-out, sampling after every instruction.
		regs := lv.RegOut[b.ID].Copy()
		preds := lv.PredOut[b.ID].Copy()
		sample := func() {
			if n := count(regs); n > pr.MaxLive {
				pr.MaxLive = n
			}
			if n := count(preds); n > pr.MaxLivePreds {
				pr.MaxLivePreds = n
			}
		}
		sample()
		var srcBuf [4]ir.Reg
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			switch in.Op {
			case ir.Jump, ir.BrEQ, ir.BrNE, ir.BrLT, ir.BrLE, ir.BrGT, ir.BrGE:
				if in.Target >= 0 {
					regs.OrWith(lv.RegIn[in.Target])
					preds.OrWith(lv.PredIn[in.Target])
				}
			}
			if d := in.DefReg(); d != ir.RNone && in.Guard == ir.PNone && !in.ConditionalDef() {
				regs.Clear(int32(d))
			}
			if in.Op == ir.PredDef && in.Guard == ir.PNone {
				for _, pd := range []ir.PredDest{in.P1, in.P2} {
					if pd.Type == ir.PredU || pd.Type == ir.PredUBar {
						preds.Clear(int32(pd.P))
					}
				}
			}
			for _, s := range in.SrcRegs(srcBuf[:0]) {
				regs.Set(int32(s))
			}
			if in.Guard != ir.PNone {
				preds.Set(int32(in.Guard))
			}
			if in.Op == ir.PredDef {
				for _, pd := range []ir.PredDest{in.P1, in.P2} {
					if pd.Type != ir.PredNone && pd.Type != ir.PredU && pd.Type != ir.PredUBar {
						preds.Set(int32(pd.P))
					}
				}
			}
			sample()
		}
	}
	return pr
}

// AnalyzeProgram returns the maximum pressure over all functions.
func AnalyzeProgram(p *ir.Program) Pressure {
	var pr Pressure
	for _, f := range p.Funcs {
		fp := Analyze(f)
		if fp.MaxLive > pr.MaxLive {
			pr.MaxLive = fp.MaxLive
		}
		if fp.MaxLivePreds > pr.MaxLivePreds {
			pr.MaxLivePreds = fp.MaxLivePreds
		}
		pr.Virtual += fp.Virtual
	}
	return pr
}
