package regalloc

import (
	"fmt"
	"sort"

	"predication/internal/cfg"
	"predication/internal/ir"
)

// Result reports what allocation did.
type Result struct {
	// Spilled counts virtual registers assigned to memory slots.
	Spilled int
	// SlotWords is the spill memory appended to the program.
	SlotWords int
	// MaxPhys is the highest physical register number actually used.
	MaxPhys int
}

// scratch registers reserved from the physical file for spill code: up to
// three sources may need reloading (select, store) and one definition
// needs a home.
const numScratch = 4

// Allocate maps every function's virtual registers onto a physical file of
// numRegs registers using linear scan (Poletto/Sarkar), spilling excess
// live ranges to memory slots appended after the program's data.  The
// rewrite preserves predication: spill stores after a guarded definition
// carry the same guard, so a nullified instruction leaves its spill slot
// untouched.
//
// Predicate registers are architectural (the paper's predicate register
// file) and are not allocated.  Functions must not recurse: spill slots
// are statically assigned per function, matching the benchmark suite and
// the paper's compilation model.
func Allocate(p *ir.Program, numRegs int) (*Result, error) {
	if numRegs < numScratch+2 {
		return nil, fmt.Errorf("regalloc: need at least %d registers", numScratch+2)
	}
	res := &Result{}
	for _, f := range p.Funcs {
		if err := allocateFunc(p, f, numRegs, res); err != nil {
			return nil, fmt.Errorf("regalloc: %s: %w", f.Name, err)
		}
	}
	return res, nil
}

// interval is a live range over linearized positions.
type interval struct {
	v          ir.Reg
	start, end int
	phys       ir.Reg // assigned physical register (0 = spilled)
	slot       int64  // spill slot address when phys == 0
}

func allocateFunc(p *ir.Program, f *ir.Func, numRegs int, res *Result) error {
	g := cfg.NewGraph(f)
	lv := cfg.ComputeLiveness(g)

	// Linearize live blocks and compute intervals.
	blocks := f.LiveBlocks(nil)
	pos := 0
	starts := map[int]int{} // block ID -> start position
	ends := map[int]int{}
	for _, b := range blocks {
		starts[b.ID] = pos
		pos += len(b.Instrs) + 1
		ends[b.ID] = pos - 1
	}
	iv := map[ir.Reg]*interval{}
	touch := func(v ir.Reg, at int) {
		if v == ir.RNone {
			return
		}
		it := iv[v]
		if it == nil {
			it = &interval{v: v, start: at, end: at}
			iv[v] = it
			return
		}
		if at < it.start {
			it.start = at
		}
		if at > it.end {
			it.end = at
		}
	}
	var srcBuf [4]ir.Reg
	for _, b := range blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		for v := ir.Reg(1); v < f.NextReg; v++ {
			if lv.RegIn[b.ID].Has(int32(v)) {
				touch(v, starts[b.ID])
			}
			if lv.RegOut[b.ID].Has(int32(v)) {
				touch(v, ends[b.ID])
			}
		}
		at := starts[b.ID]
		for _, in := range b.Instrs {
			at++
			for _, s := range in.SrcRegs(srcBuf[:0]) {
				touch(s, at)
			}
			touch(in.DefReg(), at)
		}
	}

	intervals := make([]*interval, 0, len(iv))
	for _, it := range iv {
		intervals = append(intervals, it)
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].start != intervals[j].start {
			return intervals[i].start < intervals[j].start
		}
		return intervals[i].v < intervals[j].v
	})

	// Linear scan with furthest-end spilling.  Physical registers 1..K
	// are allocatable; the top numScratch registers are reserved.
	avail := numRegs - numScratch
	free := make([]ir.Reg, 0, avail)
	for r := avail; r >= 1; r-- {
		free = append(free, ir.Reg(r))
	}
	var active []*interval // sorted by end
	insertActive := func(it *interval) {
		i := sort.Search(len(active), func(i int) bool { return active[i].end > it.end })
		active = append(active, nil)
		copy(active[i+1:], active[i:])
		active[i] = it
	}
	nextSlot := int64(p.MemWords) + int64(res.SlotWords)
	spill := func(it *interval) {
		it.phys = 0
		it.slot = nextSlot
		nextSlot++
		res.SlotWords++
		res.Spilled++
	}
	for _, it := range intervals {
		// Expire finished intervals.
		n := 0
		for _, a := range active {
			if a.end >= it.start {
				active[n] = a
				n++
			} else {
				free = append(free, a.phys)
			}
		}
		active = active[:n]
		if len(free) > 0 {
			it.phys = free[len(free)-1]
			free = free[:len(free)-1]
			if int(it.phys) > res.MaxPhys {
				res.MaxPhys = int(it.phys)
			}
			insertActive(it)
			continue
		}
		// Spill the interval that ends furthest away.
		last := active[len(active)-1]
		if last.end > it.end {
			it.phys = last.phys
			spill(last)
			active = active[:len(active)-1]
			insertActive(it)
		} else {
			spill(it)
		}
	}

	// Rewrite instructions.
	scratchBase := ir.Reg(numRegs - numScratch + 1)
	if n := numRegs; n > res.MaxPhys && res.Spilled > 0 {
		res.MaxPhys = numRegs // scratch registers in use
	}
	for _, b := range blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			nextScratch := scratchBase
			takeScratch := func() ir.Reg {
				r := nextScratch
				nextScratch++
				if nextScratch > ir.Reg(numRegs)+1 {
					panic(fmt.Sprintf("regalloc: instruction needs more than %d scratch registers (numRegs %d)", numScratch, numRegs))
				}
				return r
			}
			mapUse := func(o *ir.Operand) {
				if !o.IsReg() {
					return
				}
				it := iv[o.R]
				if it == nil {
					return
				}
				if it.phys != 0 {
					o.R = it.phys
					return
				}
				s := takeScratch()
				out = append(out, ir.NewInstr(ir.Load, s, ir.Imm(0), ir.Imm(it.slot)))
				o.R = s
			}
			// CMov/CMovCom read their destination: reload it first so the
			// conditional write sees the current value.
			var dstIt *interval
			if d := in.DefReg(); d != ir.RNone {
				dstIt = iv[d]
			}
			if in.ConditionalDef() && dstIt != nil && dstIt.phys == 0 {
				s := takeScratch()
				out = append(out, ir.NewInstr(ir.Load, s, ir.Imm(0), ir.Imm(dstIt.slot)))
				mapUse(&in.A)
				mapUse(&in.B)
				mapUse(&in.C)
				in.Dst = s
				out = append(out, in)
				st := ir.NewInstr(ir.Store, ir.RNone, ir.Imm(0), ir.Imm(dstIt.slot), ir.R(s))
				st.Guard = in.Guard
				out = append(out, st)
				continue
			}
			mapUse(&in.A)
			mapUse(&in.B)
			mapUse(&in.C)
			if dstIt != nil {
				if dstIt.phys != 0 {
					in.Dst = dstIt.phys
				} else {
					s := takeScratch()
					in.Dst = s
					out = append(out, in)
					st := ir.NewInstr(ir.Store, ir.RNone, ir.Imm(0), ir.Imm(dstIt.slot), ir.R(s))
					// A guarded definition writes only when its predicate
					// holds; so must its spill store.
					st.Guard = in.Guard
					out = append(out, st)
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	f.NextReg = ir.Reg(numRegs) + 1
	return nil
}

// GrowMemory extends the program's memory to cover the allocated spill
// slots.  Call once after Allocate.
func GrowMemory(p *ir.Program, res *Result) {
	p.MemWords += res.SlotWords
}
