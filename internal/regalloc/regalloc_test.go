package regalloc

import (
	"testing"

	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/progen"
)

// TestAllocatePreservesSemantics allocates every benchmark kernel under
// every model to small register files and checks checksums.
func TestAllocatePreservesSemantics(t *testing.T) {
	kernels := []string{"wc", "grep", "cmp", "072.sc", "023.eqntott", "qsort", "052.alvinn"}
	for _, name := range kernels {
		k, _ := bench.ByName(name)
		ref, err := emu.Run(k.Build(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Word(bench.CheckAddr)
		for _, model := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
			for _, nregs := range []int{12, 24, 64} {
				c, err := core.Compile(k.Build(), model, core.DefaultOptions(machine.Issue8Br1()))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Allocate(c.Prog, nregs)
				if err != nil {
					t.Fatalf("%s %v K=%d: %v", name, model, nregs, err)
				}
				GrowMemory(c.Prog, res)
				if err := c.Prog.Verify(); err != nil {
					t.Fatalf("%s %v K=%d: %v", name, model, nregs, err)
				}
				run, err := emu.Run(c.Prog, emu.Options{})
				if err != nil {
					t.Fatalf("%s %v K=%d: run: %v", name, model, nregs, err)
				}
				if got := run.Word(bench.CheckAddr); got != want {
					t.Errorf("%s %v K=%d: checksum %#x, want %#x", name, model, nregs, got, want)
				}
				// No register beyond the physical file.
				for _, f := range c.Prog.Funcs {
					for _, b := range f.LiveBlocks(nil) {
						for _, in := range b.Instrs {
							if d := in.DefReg(); int(d) > nregs {
								t.Fatalf("%s: register %v beyond file of %d", name, d, nregs)
							}
						}
					}
				}
			}
		}
	}
}

// TestAllocateRandomPrograms fuzzes allocation on generated programs.
func TestAllocateRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		src := progen.Generate(seed, progen.Default())
		ref, _ := emu.Run(src, emu.Options{})
		p := progen.Generate(seed, progen.Default())
		res, err := Allocate(p, 10)
		if err != nil {
			t.Fatal(err)
		}
		GrowMemory(p, res)
		got, err := emu.Run(p, emu.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Word(progen.CheckAddr) != ref.Word(progen.CheckAddr) {
			t.Errorf("seed %d: allocation changed semantics", seed)
		}
	}
}

func TestAllocateSpillsWhenTight(t *testing.T) {
	k, _ := bench.ByName("wc")
	c, err := core.Compile(k.Build(), core.CondMove, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(c.Prog, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Error("a 10-register file should force spills for converted wc")
	}
	if res.SlotWords != res.Spilled {
		t.Errorf("slots %d != spilled %d", res.SlotWords, res.Spilled)
	}
}

func TestAllocateRejectsTinyFile(t *testing.T) {
	p := progen.Generate(1, progen.Default())
	if _, err := Allocate(p, 3); err == nil {
		t.Error("a file smaller than the scratch reserve must be rejected")
	}
}

// TestPressureOrdering verifies the paper's qualitative claim: the
// conditional-move model needs the most registers, full predication fewer,
// superblock fewest.
func TestPressureOrdering(t *testing.T) {
	for _, name := range []string{"wc", "072.sc", "lex"} {
		k, _ := bench.ByName(name)
		press := map[core.Model]Pressure{}
		for _, model := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
			c, err := core.Compile(k.Build(), model, core.DefaultOptions(machine.Issue8Br1()))
			if err != nil {
				t.Fatal(err)
			}
			press[model] = AnalyzeProgram(c.Prog)
		}
		if press[core.CondMove].MaxLive < press[core.FullPred].MaxLive {
			t.Errorf("%s: conditional move max-live (%d) below full predication (%d)",
				name, press[core.CondMove].MaxLive, press[core.FullPred].MaxLive)
		}
		if press[core.CondMove].Virtual <= press[core.Superblock].Virtual {
			t.Errorf("%s: conversion should allocate more temporaries (%d vs %d)",
				name, press[core.CondMove].Virtual, press[core.Superblock].Virtual)
		}
	}
}

func TestAnalyzeSimple(t *testing.T) {
	f := ir.NewFunc("t")
	b := f.EntryBlock()
	rs := make([]ir.Reg, 5)
	for i := range rs {
		rs[i] = f.NewReg()
		b.Append(ir.NewInstr(ir.Mov, rs[i], ir.Imm(int64(i))))
	}
	// All five live simultaneously at the final sum.
	sum := f.NewReg()
	b.Append(ir.NewInstr(ir.Add, sum, ir.R(rs[0]), ir.R(rs[1])))
	b.Append(ir.NewInstr(ir.Add, sum, ir.R(sum), ir.R(rs[2])))
	b.Append(ir.NewInstr(ir.Add, sum, ir.R(sum), ir.R(rs[3])))
	b.Append(ir.NewInstr(ir.Add, sum, ir.R(sum), ir.R(rs[4])))
	b.Append(ir.NewInstr(ir.Store, ir.RNone, ir.Imm(0), ir.Imm(8), ir.R(sum)))
	b.Append(&ir.Instr{Op: ir.Halt})
	pr := Analyze(f)
	if pr.MaxLive < 5 {
		t.Errorf("max live %d, want >= 5", pr.MaxLive)
	}
	if pr.Virtual != 6 {
		t.Errorf("virtual %d, want 6", pr.Virtual)
	}
}

// TestAllocateGuardedSpills: spill stores after guarded definitions carry
// the guard, so nullified instructions leave their slots untouched.
func TestAllocateGuardedSpills(t *testing.T) {
	k, _ := bench.ByName("wc")
	c, err := core.Compile(k.Build(), core.FullPred, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := emu.Run(c.Prog, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(c.Prog, 8) // very tight: guarded code must spill
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Fatal("expected spills at 8 registers")
	}
	// At least one spill store must be guarded (full-pred code).
	foundGuardedStore := false
	for _, f := range c.Prog.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			for _, in := range b.Instrs {
				if in.Op == ir.Store && in.Guard != ir.PNone &&
					in.A.IsImm && in.B.IsImm && in.B.Imm >= int64(c.Prog.MemWords) {
					foundGuardedStore = true
				}
			}
		}
	}
	if !foundGuardedStore {
		t.Error("expected guarded spill stores in predicated code")
	}
	GrowMemory(c.Prog, res)
	got, err := emu.Run(c.Prog, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Word(bench.CheckAddr) != ref.Word(bench.CheckAddr) {
		t.Error("tight allocation changed semantics")
	}
}

// TestAllocateGuardInstrModel: allocation after guard-instruction lowering
// (GuardApply has no register operands but its runs must stay intact).
func TestAllocateGuardInstrModel(t *testing.T) {
	k, _ := bench.ByName("grep")
	ref, _ := emu.Run(k.Build(), emu.Options{})
	c, err := core.Compile(k.Build(), core.GuardInstr, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(c.Prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	GrowMemory(c.Prog, res)
	got, err := emu.Run(c.Prog, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Word(bench.CheckAddr) != ref.Word(bench.CheckAddr) {
		t.Error("allocation broke the guard-instruction model")
	}
}
