// Package guardinstr lowers fully predicated code to the guard-instruction
// encoding — the intermediate level of predication support between
// conditional moves and full predication that the paper mentions in §1
// (citing Pnevmatikatos & Sohi's guarded execution) and asks future work
// to explore in its conclusion.
//
// In this encoding the processor keeps the predicate register file and the
// predicate define opcodes of full predication, but ordinary instructions
// have no guard operand bits: a "guard p, n" prefix instruction applies
// predicate p to the next n instructions.  The model therefore retains
// full if-conversion (unlike conditional moves: no speculation-and-commit
// sequences, no renamed temporaries) while remaining encodable on an ISA
// without a spare source operand — at the price of one extra fetch/issue
// slot per run of identically guarded instructions, and of serializing
// the guard read in front of each run.
//
// The lowering runs after scheduling (so run lengths reflect the final
// instruction order) and keeps the semantic Guard fields on the covered
// instructions: the emulator executes those, making GuardApply purely a
// fetch/issue-bandwidth artifact, which is exactly the cost this design
// point pays.  Runs never extend past a control transfer, so a taken
// branch cannot leak guarding onto its target — the constraint a real
// counting implementation would need.
package guardinstr

import "predication/internal/ir"

// Lower inserts guard instructions before every maximal run of
// consecutive, identically guarded instructions.  It returns the number of
// guard instructions inserted.
func Lower(p *ir.Program) int {
	inserted := 0
	for _, f := range p.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			var out []*ir.Instr
			i := 0
			for i < len(b.Instrs) {
				in := b.Instrs[i]
				g := in.Guard
				if g == ir.PNone {
					out = append(out, in)
					i++
					continue
				}
				// Collect the run: same guard, and stop after any branch.
				j := i
				for j < len(b.Instrs) && b.Instrs[j].Guard == g {
					j++
					if b.Instrs[j-1].Op.IsBranch() {
						break
					}
				}
				out = append(out, &ir.Instr{Op: ir.GuardApply, Guard: g, A: ir.Imm(int64(j - i))})
				out = append(out, b.Instrs[i:j]...)
				inserted++
				i = j
			}
			b.Instrs = out
		}
	}
	return inserted
}

// Count returns the number of guard instructions in the program (for
// tests and statistics).
func Count(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			for _, in := range b.Instrs {
				if in.Op == ir.GuardApply {
					n++
				}
			}
		}
	}
	return n
}
