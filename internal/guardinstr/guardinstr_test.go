package guardinstr_test

import (
	"testing"

	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/guardinstr"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/progen"
)

// TestGuardModelSemantics: the guard-instruction pipeline must preserve
// every kernel's checksum.
func TestGuardModelSemantics(t *testing.T) {
	for _, k := range bench.All() {
		ref, err := emu.Run(k.Build(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(k.Build(), core.GuardInstr, core.DefaultOptions(machine.Issue8Br1()))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		run, err := emu.Run(c.Prog, emu.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if run.Word(bench.CheckAddr) != ref.Word(bench.CheckAddr) {
			t.Errorf("%s: checksum mismatch", k.Name)
		}
	}
}

// TestLowerStructure checks the lowering invariants directly.
func TestLowerStructure(t *testing.T) {
	k, _ := bench.ByName("wc")
	c, err := core.Compile(k.Build(), core.GuardInstr, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		t.Fatal(err)
	}
	if guardinstr.Count(c.Prog) == 0 {
		t.Fatal("no guard instructions inserted for an if-converted kernel")
	}
	for _, f := range c.Prog.Funcs {
		for _, b := range f.LiveBlocks(nil) {
			covered := 0
			var guard ir.PReg
			for _, in := range b.Instrs {
				if in.Op == ir.GuardApply {
					if covered != 0 {
						t.Fatalf("nested guard run in B%d", b.ID)
					}
					covered = int(in.A.Imm)
					guard = in.Guard
					continue
				}
				if covered > 0 {
					if in.Guard != guard {
						t.Fatalf("guard mismatch inside run: %v under %v", in, guard)
					}
					covered--
					if in.Op.IsBranch() && covered != 0 {
						t.Fatalf("branch inside a guard run must terminate it: %v", in)
					}
				} else if in.Guard != ir.PNone {
					t.Fatalf("guarded instruction outside any run: %v", in)
				}
			}
			if covered != 0 {
				t.Fatalf("guard run overruns block B%d", b.ID)
			}
		}
	}
}

// TestGuardModelCost: dynamic instruction count sits between full
// predication and conditional move (the spectrum the paper describes).
func TestGuardModelCost(t *testing.T) {
	k, _ := bench.ByName("wc")
	counts := map[core.Model]int64{}
	for _, m := range []core.Model{core.CondMove, core.FullPred, core.GuardInstr} {
		c, err := core.Compile(k.Build(), m, core.DefaultOptions(machine.Issue8Br1()))
		if err != nil {
			t.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		counts[m] = run.Steps
	}
	if !(counts[core.FullPred] < counts[core.GuardInstr]) {
		t.Errorf("guard model must execute more than full predication: %v", counts)
	}
	if !(counts[core.GuardInstr] < counts[core.CondMove]) {
		t.Errorf("guard model must execute less than conditional move: %v", counts)
	}
}

// TestGuardModelRandomPrograms fuzzes the fourth pipeline.
func TestGuardModelRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		src := progen.Generate(seed, progen.Default())
		ref, _ := emu.Run(src, emu.Options{})
		c, err := core.Compile(progen.Generate(seed, progen.Default()), core.GuardInstr,
			core.DefaultOptions(machine.Issue8Br1()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := emu.Run(c.Prog, emu.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Word(progen.CheckAddr) != ref.Word(progen.CheckAddr) {
			t.Errorf("seed %d: semantics changed", seed)
		}
	}
}
