package asm

import "fmt"

// Limits bounds the resources a parsed program may claim.  The parser
// enforces them while reading, so a short hostile line (".data
// 9000000000: 1", "B99999999:", "r2000000000") is refused before it can
// materialize gigabytes of zero words, placeholder blocks, or register
// file — the allocation happens after the bound check, never before.
//
// Parse uses DefaultLimits, which are generous sanity caps for trusted
// inputs (hand-written predsim -file programs, fuzzer repros).  The
// untrusted submission path (internal/submit) calls ParseLimited with
// much tighter, operator-configured bounds.
type Limits struct {
	// MaxMemWords caps the .mem directive.  .data addresses are
	// additionally required to stay inside the declared memory, so this
	// also bounds the parse-time data image.
	MaxMemWords int
	// MaxFuncs caps the number of func directives.
	MaxFuncs int
	// MaxBlocks caps block IDs per function (labels, fall comments, and
	// branch targets all materialize placeholder blocks up to the ID).
	MaxBlocks int
	// MaxInstrs caps the program-wide instruction count.
	MaxInstrs int
	// MaxRegs and MaxPRegs cap register numbers per function; the
	// emulator sizes each call frame's register and predicate files by
	// the highest number seen.
	MaxRegs  int
	MaxPRegs int
}

// DefaultLimits returns the trusted-input sanity caps used by Parse.
func DefaultLimits() Limits {
	return Limits{
		MaxMemWords: 1 << 26, // 512 MiB of words
		MaxFuncs:    4096,
		MaxBlocks:   1 << 16,
		MaxInstrs:   1 << 21,
		MaxRegs:     1 << 16,
		MaxPRegs:    1 << 16,
	}
}

// LimitError reports input refused because it exceeds a Limits bound
// (as opposed to input that is malformed).  Callers that meter untrusted
// submissions use errors.As to map it to a quota rejection rather than a
// syntax error.
type LimitError struct {
	Line  int    // 1-based source line
	Limit string // which bound, e.g. "mem words", "block id"
	Max   int64
	Got   int64
}

// Error formats the exceeded bound as one line.
func (e *LimitError) Error() string {
	return fmt.Sprintf("asm: line %d: %s %d exceeds limit %d", e.Line, e.Limit, e.Got, e.Max)
}

// limitErr builds a LimitError at the parser's current line.
func (ps *parser) limitErr(limit string, max, got int64) error {
	return &LimitError{Line: ps.line, Limit: limit, Max: max, Got: got}
}
