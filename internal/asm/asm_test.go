package asm

import (
	"errors"
	"strings"
	"testing"

	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/progen"
)

// TestRoundTripKernels: Format -> Parse -> emulate must reproduce every
// kernel's behaviour, both for the raw programs and for compiled output of
// every model (which exercises predicate defines, guards, silent forms,
// combined exits, and guard instructions).
func TestRoundTripKernels(t *testing.T) {
	models := []core.Model{core.Superblock, core.CondMove, core.FullPred, core.GuardInstr}
	for _, k := range bench.All() {
		if testing.Short() && k.Name != "wc" && k.Name != "grep" {
			continue
		}
		ref, err := emu.Run(k.Build(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Word(bench.CheckAddr)
		// Raw program.
		parsed, err := Parse(Format(k.Build()))
		if err != nil {
			t.Fatalf("%s raw: %v", k.Name, err)
		}
		res, err := emu.Run(parsed, emu.Options{})
		if err != nil {
			t.Fatalf("%s raw: %v", k.Name, err)
		}
		if res.Word(bench.CheckAddr) != want {
			t.Fatalf("%s raw: checksum mismatch after round trip", k.Name)
		}
		// Compiled programs.
		for _, m := range models {
			c, err := core.Compile(k.Build(), m, core.DefaultOptions(machine.Issue8Br1()))
			if err != nil {
				t.Fatal(err)
			}
			text := Format(c.Prog)
			parsed, err := Parse(text)
			if err != nil {
				t.Fatalf("%s %v: parse: %v", k.Name, m, err)
			}
			// Textual fixed point.
			if again := Format(parsed); again != text {
				t.Fatalf("%s %v: Format not a fixed point under Parse", k.Name, m)
			}
			res, err := emu.Run(parsed, emu.Options{})
			if err != nil {
				t.Fatalf("%s %v: run: %v", k.Name, m, err)
			}
			if res.Word(bench.CheckAddr) != want {
				t.Errorf("%s %v: checksum mismatch after round trip", k.Name, m)
			}
		}
	}
}

// TestRoundTripRandom fuzzes the round trip on generated programs.
func TestRoundTripRandom(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := progen.Generate(seed, progen.Default())
		ref, _ := emu.Run(progen.Generate(seed, progen.Default()), emu.Options{})
		parsed, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := emu.Run(parsed, emu.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Word(progen.CheckAddr) != ref.Word(progen.CheckAddr) {
			t.Errorf("seed %d: round trip changed semantics", seed)
		}
	}
}

// TestParseHandWritten parses a small hand-written listing.
func TestParseHandWritten(t *testing.T) {
	src := `
.mem 64
.entry 0
.data 16: 5 7
func F0 main:
B0:
	load r1, 0, 16
	load r2, 0, 17
	pred_lt p1_U, p2_U~, r1, r2
	add r3, r1, r2 (p1)
	sub r3, r2, r1 (p2)
	store 0, 8, r3
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(p, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Word(8) != 12 {
		t.Errorf("result %d, want 12", res.Word(8))
	}
}

// TestParseErrors checks diagnostics.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "empty program"},
		{"func F0 m:\nB0:\n\thalt\n", "func before .mem"},
		{".entry 0\n.mem 64\nfunc F0 m:\nB0:\n\thalt\n", "before .mem"},
		{".data 0: 1\n.mem 64\nfunc F0 m:\nB0:\n\thalt\n", "before .mem"},
		{".mem 64\nfunc F0 m:\nB0:\n\tbogus r1, r2, r3\n\thalt\n", "unknown mnemonic"},
		{".mem 64\nfunc F0 m:\nB0:\n\tadd r1, r2\n\thalt\n", "takes dest and two sources"},
		{".mem 64\nfunc F0 m:\n\tadd r1, r2, r3\n", "outside a block"},
		{".mem 64\nfunc F0 m:\nB0:\n\tjump B9\n", "missing/dead block"},
		{".mem 64\nfunc F0 m:\nB0:\n\tguard p1, 0\n\thalt\n", "positive count"},
		{".mem 64\nfunc F0 m:\nB0:\n\tpred_zz p1_U, r1, r2\n\thalt\n", "unknown predicate comparison"},
		{".mem 64\nfunc F0 m:\nB0:\n\tpred_eq p1_X, r1, r2\n\thalt\n", "bad predicate type"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %v, want containing %q", c.src, err, c.want)
		}
	}
}

// TestSilentRoundTrip: the _s suffix survives.
func TestSilentRoundTrip(t *testing.T) {
	src := ".mem 64\nfunc F0 m:\nB0:\n\tload_s r1, 0, 999999\n\tstore 0, 8, r1\n\thalt\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(p), "load_s") {
		t.Error("silent suffix lost")
	}
	res, err := emu.Run(p, emu.Options{})
	if err != nil {
		t.Fatalf("silent load must not trap: %v", err)
	}
	if res.Word(8) != 0 {
		t.Error("silent out-of-range load must produce 0")
	}
}

// TestRoundTripEveryOpcode formats and parses one instruction of every
// syntactic class, requiring a textual fixed point.
func TestRoundTripEveryOpcode(t *testing.T) {
	f := ir.NewFunc("all")
	b := f.EntryBlock()
	r := func() ir.Reg { return f.NewReg() }
	pr := func() ir.PReg { return f.NewPReg() }
	p1, p2 := pr(), pr()
	add := func(in *ir.Instr) { b.Append(in) }
	add(ir.NewInstr(ir.Nop, ir.RNone))
	add(ir.NewInstr(ir.Mov, r(), ir.Imm(-5)))
	for _, op := range []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And,
		ir.Or, ir.Xor, ir.AndNot, ir.OrNot, ir.Shl, ir.Shr,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.AddF, ir.SubF, ir.MulF, ir.DivF,
		ir.CmpEQF, ir.CmpNEF, ir.CmpLTF, ir.CmpLEF, ir.CmpGTF, ir.CmpGEF} {
		add(ir.NewInstr(op, r(), ir.R(1), ir.Imm(3)))
	}
	add(ir.NewInstr(ir.AbsF, r(), ir.R(1)))
	add(ir.NewInstr(ir.CvtIF, r(), ir.R(1)))
	add(ir.NewInstr(ir.CvtFI, r(), ir.R(1)))
	ld := ir.NewInstr(ir.Load, r(), ir.R(1), ir.Imm(16))
	ld.Silent = true
	add(ld)
	add(ir.NewInstr(ir.Store, ir.RNone, ir.R(1), ir.Imm(16), ir.Imm(7)))
	guarded := ir.NewInstr(ir.Add, r(), ir.R(1), ir.Imm(1))
	guarded.Guard = p1
	add(guarded)
	add(ir.NewPredDef(ir.LT, ir.PredDest{P: p1, Type: ir.PredOR},
		ir.PredDest{P: p2, Type: ir.PredUBar}, ir.R(1), ir.Imm(9), p2))
	add(ir.NewPredDef(ir.GEF, ir.PredDest{P: p1, Type: ir.PredANDBar},
		ir.PredDest{}, ir.R(1), ir.R(2), ir.PNone))
	add(&ir.Instr{Op: ir.PredClear})
	add(&ir.Instr{Op: ir.PredSet})
	add(&ir.Instr{Op: ir.GuardApply, Guard: p1, A: ir.Imm(2)})
	add(&ir.Instr{Op: ir.CMov, Dst: r(), A: ir.R(1), C: ir.R(2)})
	add(&ir.Instr{Op: ir.CMovCom, Dst: r(), A: ir.Imm(4), C: ir.R(2)})
	add(&ir.Instr{Op: ir.Select, Dst: r(), A: ir.R(1), B: ir.R(2), C: ir.R(3)})
	next := f.NewBlock()
	br := ir.NewBranch(ir.LE, ir.R(1), ir.Imm(0), next.ID)
	br.Guard = p1
	add(br)
	add(&ir.Instr{Op: ir.Jump, Target: next.ID})
	next.Append(&ir.Instr{Op: ir.JSR, Target: 0})
	next.Append(&ir.Instr{Op: ir.Ret})
	prog := ir.NewProgram(64)
	prog.AddFunc(f)
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if again := Format(parsed); again != text {
		t.Errorf("not a fixed point:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

// TestParseCorruption is the hostile-input audit table (mirroring
// irverify's corruption tests): every entry is adversarial text that must
// come back as a one-line error — never a panic, and never a large
// allocation on the way to the error.  Entries marked limit must surface
// as *LimitError so the untrusted submission path can meter them as
// quota rejections rather than syntax errors.
func TestParseCorruption(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		want  string // substring of the error
		limit bool   // must be a *LimitError
	}{
		{"huge mem", ".mem 999999999999\n", "mem words", true},
		{"mem overflow", ".mem 99999999999999999999\n", "bad .mem", false},
		{"negative mem", ".mem -4\n", "bad .mem", false},
		{"huge data addr", ".mem 64\n.data 9000000000000000000: 1\n", "outside .mem", false},
		{"data past mem", ".mem 64\n.data 63: 1 2\n", "outside .mem", false},
		{"negative data addr", ".mem 64\n.data -1: 5\n", "bad .data address", false},
		{"data no colon", ".mem 64\n.data 5 5\n", "missing colon", false},
		{"data bad value", ".mem 64\n.data 5: x\n", "bad .data value", false},
		{"huge block label", ".mem 64\nfunc F0 m:\nB99999999:\n\thalt\n", "block id", true},
		{"huge branch target", ".mem 64\nfunc F0 m:\nB0:\n\tjump B99999999\n", "block id", true},
		{"huge fall target", ".mem 64\nfunc F0 m:\nB0:\n\thalt\n\t; fall B99999999\n", "block id", true},
		{"huge register", ".mem 64\nfunc F0 m:\nB0:\n\tmov r2000000000, 1\n\thalt\n", "register number", true},
		{"huge predicate", ".mem 64\nfunc F0 m:\nB0:\n\tpred_eq p2000000000_U, r1, 0\n\thalt\n", "predicate register number", true},
		{"register overflow", ".mem 64\nfunc F0 m:\nB0:\n\tmov r99999999999999999999, 1\n\thalt\n", "bad register", false},
		{"block id overflow", ".mem 64\nfunc F0 m:\nB99999999999999999999:\n\thalt\n", "bad block label", false},
		{"truncated instr", ".mem 64\nfunc F0 m:\nB0:\n\tadd r1,\n", "takes dest", false},
		{"guard garbage", ".mem 64\nfunc F0 m:\nB0:\n\tadd r1, r2, r3 (q9)\n\thalt\n", "expected predicate register", false},
		{"bare paren", ".mem 64\nfunc F0 m:\nB0:\n\t(p1)\n", "unknown mnemonic", false},
		{"entry out of range", ".mem 64\n.entry 9\nfunc F0 m:\nB0:\n\thalt\n", "out of range", false},
		{"fentry out of range", ".mem 64\nfunc F0 m:\n.fentry 7\nB0:\n\thalt\n", "entry block", false},
		{"fall before block", ".mem 64\nfunc F0 m:\n; fall B1\n", "bad fall comment", false},
		{"stray fentry", ".mem 64\n.fentry 1\n", "bad .fentry", false},
		{"jsr bad func", ".mem 64\nfunc F0 m:\nB0:\n\tjsr F9\n\thalt\n", "missing function", false},
		{"nul bytes", ".mem 64\nfunc F0 m:\nB0:\n\tmov r1, \x00\n\thalt\n", "bad operand", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("hostile input parsed cleanly:\n%s", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q, want containing %q", err, c.want)
			}
			var le *LimitError
			if got := errors.As(err, &le); got != c.limit {
				t.Errorf("LimitError = %v, want %v (err %q)", got, c.limit, err)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}

// TestParseLimitedTightBounds: operator-tightened bounds refuse programs
// the default bounds accept, and zero fields fall back to defaults.
func TestParseLimitedTightBounds(t *testing.T) {
	src := ".mem 64\nfunc F0 m:\nB0:\n\tmov r1, 1\n\tmov r2, 2\n\tmov r3, 3\n\thalt\n"
	if _, err := Parse(src); err != nil {
		t.Fatalf("default limits must accept the program: %v", err)
	}
	var le *LimitError
	if _, err := ParseLimited(src, Limits{MaxInstrs: 2}); !errors.As(err, &le) {
		t.Fatalf("tight MaxInstrs: got %v, want LimitError", err)
	}
	if le.Limit != "instruction count" {
		t.Errorf("limit %q, want instruction count", le.Limit)
	}
	if _, err := ParseLimited(src, Limits{MaxRegs: 2}); !errors.As(err, &le) {
		t.Fatalf("tight MaxRegs: got %v, want LimitError", err)
	}
	if _, err := ParseLimited(src, Limits{MaxMemWords: 32}); !errors.As(err, &le) {
		t.Fatalf("tight MaxMemWords: got %v, want LimitError", err)
	}
	if _, err := ParseLimited(src, Limits{MaxFuncs: 1}); err != nil {
		t.Errorf("one function within MaxFuncs 1: %v", err)
	}
}
