// Package asm provides a textual serialization of IR programs: Format
// renders a complete, round-trippable listing (directives + the same
// assembly syntax internal/ir prints), and Parse reads it back.
//
// The format lets predsim execute hand-written programs, makes compiled
// code diffable, and gives the test suite a strong round-trip invariant:
// Parse(Format(p)) emulates identically to p for every compiled benchmark.
//
//	.mem 65536
//	.entry 0
//	.data 16: 104 101 108 108 111
//	func F0 main:
//	B0:
//		mov r1, 0
//		pred_eq p1_OR, p3_U~, r4, 0 (p2)
//		load_s r2, r1, 16
//		guard p5, 2
//		add r7, r7, 1 (p5)
//		blt r2, r3, B5 (p1)
//		jump B1
//		; fall B2
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"predication/internal/ir"
)

// Format renders the program as parseable text.
func Format(p *ir.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".mem %d\n", p.MemWords)
	fmt.Fprintf(&sb, ".entry %d\n", p.Entry)
	// Data in runs of nonzero words.
	i := 0
	for i < len(p.Data) {
		if p.Data[i] == 0 {
			i++
			continue
		}
		j := i
		for j < len(p.Data) && p.Data[j] != 0 {
			j++
		}
		fmt.Fprintf(&sb, ".data %d:", i)
		for _, v := range p.Data[i:j] {
			fmt.Fprintf(&sb, " %d", v)
		}
		sb.WriteByte('\n')
		i = j
	}
	for fi, f := range p.Funcs {
		fmt.Fprintf(&sb, "func F%d %s:\n", fi, f.Name)
		if f.Entry != 0 {
			fmt.Fprintf(&sb, ".fentry %d\n", f.Entry)
		}
		for _, b := range f.LiveBlocks(nil) {
			if b.Name != "" {
				fmt.Fprintf(&sb, "B%d: ; %s\n", b.ID, b.Name)
			} else {
				fmt.Fprintf(&sb, "B%d:\n", b.ID)
			}
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "\t%s\n", in)
			}
			if !b.EndsUnconditionally() && b.Fall >= 0 {
				fmt.Fprintf(&sb, "\t; fall B%d\n", b.Fall)
			}
		}
	}
	return sb.String()
}

// opTable maps mnemonics (without the _s silent suffix) to opcodes for
// every opcode the parser accepts in generic three-operand form or with a
// dedicated rule.
var opTable = map[string]ir.Op{
	"nop": ir.Nop, "halt": ir.Halt, "mov": ir.Mov,
	"add": ir.Add, "sub": ir.Sub, "mul": ir.Mul, "div": ir.Div, "rem": ir.Rem,
	"and": ir.And, "or": ir.Or, "xor": ir.Xor,
	"and_not": ir.AndNot, "or_not": ir.OrNot, "shl": ir.Shl, "shr": ir.Shr,
	"eq": ir.CmpEQ, "ne": ir.CmpNE, "lt": ir.CmpLT, "le": ir.CmpLE,
	"gt": ir.CmpGT, "ge": ir.CmpGE,
	"add_f": ir.AddF, "sub_f": ir.SubF, "mul_f": ir.MulF, "div_f": ir.DivF,
	"abs_f": ir.AbsF, "cvt_if": ir.CvtIF, "cvt_fi": ir.CvtFI,
	"eq_f": ir.CmpEQF, "ne_f": ir.CmpNEF, "lt_f": ir.CmpLTF,
	"le_f": ir.CmpLEF, "gt_f": ir.CmpGTF, "ge_f": ir.CmpGEF,
	"load": ir.Load, "store": ir.Store,
	"jump": ir.Jump, "beq": ir.BrEQ, "bne": ir.BrNE, "blt": ir.BrLT,
	"ble": ir.BrLE, "bgt": ir.BrGT, "bge": ir.BrGE,
	"jsr": ir.JSR, "ret": ir.Ret,
	"pred_clear": ir.PredClear, "pred_set": ir.PredSet,
	"cmov": ir.CMov, "cmov_com": ir.CMovCom, "select": ir.Select,
	"guard": ir.GuardApply,
}

var cmpTable = map[string]ir.Cmp{
	"eq": ir.EQ, "ne": ir.NE, "lt": ir.LT, "le": ir.LE, "gt": ir.GT, "ge": ir.GE,
	"eq_f": ir.EQF, "ne_f": ir.NEF, "lt_f": ir.LTF, "le_f": ir.LEF,
	"gt_f": ir.GTF, "ge_f": ir.GEF,
}

var typeTable = map[string]ir.PredType{
	"U": ir.PredU, "U~": ir.PredUBar,
	"OR": ir.PredOR, "OR~": ir.PredORBar,
	"AND": ir.PredAND, "AND~": ir.PredANDBar,
}

// parser carries parse state.
type parser struct {
	p       *ir.Program
	f       *ir.Func
	b       *ir.Block
	line    int
	lim     Limits
	instrs  int
	maxReg  map[*ir.Func]ir.Reg
	maxPReg map[*ir.Func]ir.PReg
}

func (ps *parser) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", ps.line, fmt.Sprintf(format, args...))
}

// Parse reads a program from its textual form under the trusted-input
// sanity bounds of DefaultLimits.
func Parse(src string) (*ir.Program, error) {
	return ParseLimited(src, DefaultLimits())
}

// ParseLimited reads a program from its textual form, refusing input
// that exceeds lim while reading it (a refused bound surfaces as a
// *LimitError; malformed input surfaces as a plain error).  Zero or
// negative fields of lim fall back to the DefaultLimits value, so
// callers only set the bounds they meter.
func ParseLimited(src string, lim Limits) (*ir.Program, error) {
	def := DefaultLimits()
	if lim.MaxMemWords <= 0 {
		lim.MaxMemWords = def.MaxMemWords
	}
	if lim.MaxFuncs <= 0 {
		lim.MaxFuncs = def.MaxFuncs
	}
	if lim.MaxBlocks <= 0 {
		lim.MaxBlocks = def.MaxBlocks
	}
	if lim.MaxInstrs <= 0 {
		lim.MaxInstrs = def.MaxInstrs
	}
	if lim.MaxRegs <= 0 {
		lim.MaxRegs = def.MaxRegs
	}
	if lim.MaxPRegs <= 0 {
		lim.MaxPRegs = def.MaxPRegs
	}
	ps := &parser{lim: lim, maxReg: map[*ir.Func]ir.Reg{}, maxPReg: map[*ir.Func]ir.PReg{}}
	for _, raw := range strings.Split(src, "\n") {
		ps.line++
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if err := ps.parseLine(line); err != nil {
			return nil, err
		}
	}
	if ps.p == nil {
		return nil, fmt.Errorf("asm: empty program (missing .mem)")
	}
	// Fix register counters.
	for f, r := range ps.maxReg {
		if r+1 > f.NextReg {
			f.NextReg = r + 1
		}
	}
	for f, r := range ps.maxPReg {
		if r+1 > f.NextPReg {
			f.NextPReg = r + 1
		}
	}
	if err := ps.p.Verify(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return ps.p, nil
}

func (ps *parser) parseLine(line string) error {
	switch {
	case strings.HasPrefix(line, ".mem "):
		n, err := strconv.Atoi(strings.TrimSpace(line[5:]))
		if err != nil || n <= 0 {
			return ps.errf("bad .mem")
		}
		if n > ps.lim.MaxMemWords {
			return ps.limitErr("mem words", int64(ps.lim.MaxMemWords), int64(n))
		}
		ps.p = ir.NewProgram(n)
		return nil
	case strings.HasPrefix(line, ".entry "):
		n, err := strconv.Atoi(strings.TrimSpace(line[7:]))
		if err != nil || ps.p == nil {
			return ps.errf("bad .entry (or before .mem)")
		}
		ps.p.Entry = n
		return nil
	case strings.HasPrefix(line, ".fentry "):
		n, err := strconv.Atoi(strings.TrimSpace(line[8:]))
		if err != nil || ps.f == nil {
			return ps.errf("bad .fentry")
		}
		ps.f.Entry = n
		return nil
	case strings.HasPrefix(line, ".data "):
		rest := line[6:]
		colon := strings.Index(rest, ":")
		if colon < 0 {
			return ps.errf("bad .data (missing colon)")
		}
		addr, err := strconv.ParseInt(strings.TrimSpace(rest[:colon]), 10, 64)
		if err != nil || addr < 0 || ps.p == nil {
			return ps.errf("bad .data address (or before .mem)")
		}
		for _, tok := range strings.Fields(rest[colon+1:]) {
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return ps.errf("bad .data value %q", tok)
			}
			// Initialized data must fit the declared memory: the emulator
			// copies Data into a MemWords-sized image, so words past the
			// end would be silently dropped — and an unchecked address
			// would let one short line materialize gigabytes of zeros.
			if addr >= int64(ps.p.MemWords) {
				return ps.errf(".data address %d outside .mem %d", addr, ps.p.MemWords)
			}
			for int64(len(ps.p.Data)) <= addr {
				ps.p.Data = append(ps.p.Data, 0)
			}
			ps.p.Data[addr] = v
			addr++
		}
		return nil
	case strings.HasPrefix(line, "func "):
		// func F<n> <name>:
		rest := strings.TrimSuffix(strings.TrimPrefix(line, "func "), ":")
		fields := strings.Fields(rest)
		if len(fields) < 1 || !strings.HasPrefix(fields[0], "F") {
			return ps.errf("bad func header")
		}
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		if ps.p == nil {
			return ps.errf("func before .mem directive")
		}
		if len(ps.p.Funcs) >= ps.lim.MaxFuncs {
			return ps.limitErr("function count", int64(ps.lim.MaxFuncs), int64(len(ps.p.Funcs)+1))
		}
		ps.f = ir.NewFunc(name)
		ps.p.AddFunc(ps.f)
		ps.b = nil
		return nil
	case strings.HasPrefix(line, "B") && strings.Contains(line, ":"):
		colon := strings.Index(line, ":")
		id, err := strconv.Atoi(line[1:colon])
		if err != nil || ps.f == nil {
			return ps.errf("bad block label")
		}
		b, err := ps.block(id)
		if err != nil {
			return err
		}
		ps.b = b
		ps.b.Dead = false
		if c := strings.Index(line, "; "); c > colon {
			ps.b.Name = strings.TrimSpace(line[c+2:])
		}
		return nil
	case strings.HasPrefix(line, "; fall B"):
		id, err := strconv.Atoi(strings.TrimSpace(line[8:]))
		if err != nil || ps.b == nil {
			return ps.errf("bad fall comment")
		}
		b, err := ps.block(id)
		if err != nil {
			return err
		}
		ps.b.Fall = b.ID
		return nil
	case strings.HasPrefix(line, ";"):
		return nil // comment
	}
	if ps.b == nil {
		return ps.errf("instruction outside a block: %q", line)
	}
	if ps.instrs >= ps.lim.MaxInstrs {
		return ps.limitErr("instruction count", int64(ps.lim.MaxInstrs), int64(ps.instrs+1))
	}
	in, err := ps.parseInstr(line)
	if err != nil {
		return err
	}
	ps.b.Append(in)
	ps.instrs++
	return nil
}

// block returns the function's block with the given ID, materializing dead
// placeholders for gaps so IDs round-trip.  IDs are bounded before any
// placeholder is created: materialization is linear in the ID, so an
// unbounded label would be an allocation amplifier.
func (ps *parser) block(id int) (*ir.Block, error) {
	if id >= ps.lim.MaxBlocks {
		return nil, ps.limitErr("block id", int64(ps.lim.MaxBlocks-1), int64(id))
	}
	for len(ps.f.Blocks) <= id {
		nb := ps.f.NewBlock()
		if nb.ID != ps.f.Entry {
			nb.Dead = true
		}
	}
	return ps.f.Blocks[id], nil
}

// parseInstr parses one instruction line.
func (ps *parser) parseInstr(line string) (*ir.Instr, error) {
	// Trailing guard "(pN)".
	guard := ir.PNone
	if i := strings.LastIndex(line, "("); i >= 0 && strings.HasSuffix(line, ")") {
		g := line[i+1 : len(line)-1]
		p, err := ps.preg(g)
		if err != nil {
			return nil, err
		}
		guard = p
		line = strings.TrimSpace(line[:i])
	}
	mnem, rest, _ := strings.Cut(line, " ")
	silent := false
	if strings.HasSuffix(mnem, "_s") {
		base := strings.TrimSuffix(mnem, "_s")
		if op, ok := opTable[base]; ok && op.CanExcept() {
			mnem, silent = base, true
		}
	}
	args := splitArgs(rest)

	// Predicate defines: pred_<cmp> dests..., a, b
	if strings.HasPrefix(mnem, "pred_") && mnem != "pred_clear" && mnem != "pred_set" {
		cmp, ok := cmpTable[strings.TrimPrefix(mnem, "pred_")]
		if !ok {
			return nil, ps.errf("unknown predicate comparison %q", mnem)
		}
		if len(args) < 3 {
			return nil, ps.errf("predicate define needs destinations and two sources")
		}
		in := &ir.Instr{Op: ir.PredDef, Cmp: cmp, Guard: guard}
		nd := len(args) - 2
		if nd < 1 || nd > 2 {
			return nil, ps.errf("predicate define takes one or two destinations")
		}
		for k := 0; k < nd; k++ {
			pd, err := ps.predDest(args[k])
			if err != nil {
				return nil, err
			}
			if k == 0 {
				in.P1 = pd
			} else {
				in.P2 = pd
			}
		}
		var err error
		if in.A, err = ps.operand(args[nd]); err != nil {
			return nil, err
		}
		if in.B, err = ps.operand(args[nd+1]); err != nil {
			return nil, err
		}
		return in, nil
	}

	op, ok := opTable[mnem]
	if !ok {
		return nil, ps.errf("unknown mnemonic %q", mnem)
	}
	in := &ir.Instr{Op: op, Guard: guard, Silent: silent}
	switch op {
	case ir.Nop, ir.Halt, ir.Ret, ir.PredClear, ir.PredSet:
		return in, nil
	case ir.GuardApply:
		if len(args) != 2 {
			return nil, ps.errf("guard takes a predicate and a count")
		}
		p, err := ps.preg(args[0])
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return nil, ps.errf("bad guard count")
		}
		in.Guard, in.A = p, ir.Imm(n)
		return in, nil
	case ir.Jump, ir.JSR:
		if len(args) != 1 {
			return nil, ps.errf("%s takes one target", mnem)
		}
		t, err := ps.target(args[0], op == ir.JSR)
		if err != nil {
			return nil, err
		}
		in.Target = t
		return in, nil
	case ir.BrEQ, ir.BrNE, ir.BrLT, ir.BrLE, ir.BrGT, ir.BrGE:
		if len(args) != 3 {
			return nil, ps.errf("branch takes two sources and a target")
		}
		var err error
		if in.A, err = ps.operand(args[0]); err != nil {
			return nil, err
		}
		if in.B, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		if in.Target, err = ps.target(args[2], false); err != nil {
			return nil, err
		}
		return in, nil
	case ir.Store:
		if len(args) != 3 {
			return nil, ps.errf("store takes base, offset, value")
		}
		var err error
		if in.A, err = ps.operand(args[0]); err != nil {
			return nil, err
		}
		if in.B, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		if in.C, err = ps.operand(args[2]); err != nil {
			return nil, err
		}
		return in, nil
	case ir.CMov, ir.CMovCom:
		if len(args) != 3 {
			return nil, ps.errf("%s takes dest, src, cond", mnem)
		}
		var err error
		if in.Dst, err = ps.reg(args[0]); err != nil {
			return nil, err
		}
		if in.A, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		if in.C, err = ps.operand(args[2]); err != nil {
			return nil, err
		}
		return in, nil
	case ir.Select:
		if len(args) != 4 {
			return nil, ps.errf("select takes dest, src1, src2, cond")
		}
		var err error
		if in.Dst, err = ps.reg(args[0]); err != nil {
			return nil, err
		}
		if in.A, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		if in.B, err = ps.operand(args[2]); err != nil {
			return nil, err
		}
		if in.C, err = ps.operand(args[3]); err != nil {
			return nil, err
		}
		return in, nil
	case ir.Mov, ir.CvtIF, ir.CvtFI, ir.AbsF:
		if len(args) != 2 {
			return nil, ps.errf("%s takes dest and one source", mnem)
		}
		var err error
		if in.Dst, err = ps.reg(args[0]); err != nil {
			return nil, err
		}
		if in.A, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		return in, nil
	default:
		// Generic three-operand form (ALU, comparisons, load).
		if len(args) != 3 {
			return nil, ps.errf("%s takes dest and two sources", mnem)
		}
		var err error
		if in.Dst, err = ps.reg(args[0]); err != nil {
			return nil, err
		}
		if in.A, err = ps.operand(args[1]); err != nil {
			return nil, err
		}
		if in.B, err = ps.operand(args[2]); err != nil {
			return nil, err
		}
		return in, nil
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (ps *parser) reg(tok string) (ir.Reg, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, ps.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 1 {
		return 0, ps.errf("bad register %q", tok)
	}
	// The emulator sizes every call frame's register file by the highest
	// number used, so register numbers are a memory bound, not just names.
	if n > ps.lim.MaxRegs {
		return 0, ps.limitErr("register number", int64(ps.lim.MaxRegs), int64(n))
	}
	r := ir.Reg(n)
	if r > ps.maxReg[ps.f] {
		ps.maxReg[ps.f] = r
	}
	return r, nil
}

func (ps *parser) preg(tok string) (ir.PReg, error) {
	if tok == "p_true" {
		return ir.PNone, nil
	}
	if !strings.HasPrefix(tok, "p") {
		return 0, ps.errf("expected predicate register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 1 {
		return 0, ps.errf("bad predicate register %q", tok)
	}
	if n > ps.lim.MaxPRegs {
		return 0, ps.limitErr("predicate register number", int64(ps.lim.MaxPRegs), int64(n))
	}
	r := ir.PReg(n)
	if r > ps.maxPReg[ps.f] {
		ps.maxPReg[ps.f] = r
	}
	return r, nil
}

func (ps *parser) operand(tok string) (ir.Operand, error) {
	if strings.HasPrefix(tok, "r") {
		r, err := ps.reg(tok)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.R(r), nil
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return ir.Operand{}, ps.errf("bad operand %q", tok)
	}
	return ir.Imm(v), nil
}

func (ps *parser) target(tok string, isFunc bool) (int, error) {
	prefix := "B"
	if isFunc {
		prefix = "F"
	}
	if !strings.HasPrefix(tok, prefix) {
		return 0, ps.errf("expected %s-target, got %q", prefix, tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return 0, ps.errf("bad target %q", tok)
	}
	if !isFunc {
		if _, err := ps.block(n); err != nil { // materialize so verification sees it
			return 0, err
		}
	}
	return n, nil
}

// predDest parses "p3_U~" style destinations.
func (ps *parser) predDest(tok string) (ir.PredDest, error) {
	us := strings.Index(tok, "_")
	if us < 0 {
		return ir.PredDest{}, ps.errf("bad predicate destination %q", tok)
	}
	p, err := ps.preg(tok[:us])
	if err != nil {
		return ir.PredDest{}, err
	}
	t, ok := typeTable[tok[us+1:]]
	if !ok {
		return ir.PredDest{}, ps.errf("bad predicate type %q", tok[us+1:])
	}
	return ir.PredDest{P: p, Type: t}, nil
}
