package predication

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation section:
//
//	BenchmarkFigure8  — speedup, 8-issue 1-branch, perfect caches
//	BenchmarkFigure9  — speedup, 8-issue 2-branch, perfect caches
//	BenchmarkFigure10 — speedup, 4-issue 1-branch, perfect caches
//	BenchmarkFigure11 — speedup, 8-issue 1-branch, 64K I/D caches
//	BenchmarkTable2   — dynamic instruction count comparison
//	BenchmarkTable3   — branch statistics (BR / MP / MPR)
//	BenchmarkFigure5WcLoop / BenchmarkFigure6GrepLoop — the worked examples
//
// plus ablation benchmarks for the design decisions DESIGN.md calls out
// (OR-tree reduction, predicate promotion, branch combining, suppression
// stage, conversion variants).  Figures are printed once per run; the
// per-figure numeric series are also attached as custom benchmark metrics
// so `go test -bench` output records them.
//
// Absolute cycle counts are not expected to match the paper (the substrate
// is a synthetic-kernel simulator, not the authors' PA-RISC testbed); the
// shapes — who wins, by roughly what factor, where the crossovers fall —
// are the reproduction target.  See EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"predication/internal/bench"
	"predication/internal/builder"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/experiments"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

var (
	suiteOnce sync.Once
	suiteVal  *experiments.Suite
	suiteErr  error
)

// fullSuite runs the complete evaluation once per test binary invocation.
func fullSuite(b *testing.B) *experiments.Suite {
	suiteOnce.Do(func() {
		suiteVal, suiteErr = experiments.Run(experiments.Options{})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// reportFigure prints the rendered table once and attaches the mean
// speedups as metrics.
func reportFigure(b *testing.B, s *experiments.Suite, tab *experiments.Table, cfg string) {
	b.Helper()
	fmt.Println(tab.String())
	b.ReportMetric(s.MeanSpeedup(core.Superblock, cfg), "superblk-x")
	b.ReportMetric(s.MeanSpeedup(core.CondMove, cfg), "condmove-x")
	b.ReportMetric(s.MeanSpeedup(core.FullPred, cfg), "fullpred-x")
	b.ReportMetric(0, "ns/op") // wall time is not the quantity of interest
}

func BenchmarkFigure8(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Figure8()
	}
	reportFigure(b, s, t, "issue8-br1")
}

func BenchmarkFigure9(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Figure9()
	}
	reportFigure(b, s, t, "issue8-br2")
}

func BenchmarkFigure10(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Figure10()
	}
	reportFigure(b, s, t, "issue4-br1")
}

func BenchmarkFigure11(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Figure11()
	}
	reportFigure(b, s, t, "issue8-br1-64k")
}

func BenchmarkTable2(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Table2()
	}
	fmt.Println(t.String())
	b.ReportMetric(s.MeanInstrRatio(core.CondMove), "condmove-instr-ratio")
	b.ReportMetric(s.MeanInstrRatio(core.FullPred), "fullpred-instr-ratio")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkTable3(b *testing.B) {
	s := fullSuite(b)
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = s.Table3()
	}
	fmt.Println(t.String())
	var sbBR, cmBR, fpBR int64
	for _, r := range s.Results {
		sbBR += r.Stat(core.Superblock, "issue8-br1").Branches
		cmBR += r.Stat(core.CondMove, "issue8-br1").Branches
		fpBR += r.Stat(core.FullPred, "issue8-br1").Branches
	}
	b.ReportMetric(float64(cmBR)/float64(sbBR), "condmove-branch-ratio")
	b.ReportMetric(float64(fpBR)/float64(sbBR), "fullpred-branch-ratio")
	b.ReportMetric(0, "ns/op")
}

// measure compiles, emulates and simulates a kernel once.
func measure(b *testing.B, name string, model core.Model, mc machine.Config, opts *core.Options) sim.Stats {
	b.Helper()
	k, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	o := core.DefaultOptions(mc)
	if opts != nil {
		o = *opts
	}
	c, err := core.Compile(k.Build(), model, o)
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(c.Prog, mc)
	if _, err := emu.Run(c.Prog, emu.Options{Sink: s}); err != nil {
		b.Fatal(err)
	}
	return s.Stats()
}

// BenchmarkFigure5WcLoop reproduces the wc example: per-model cycle counts
// on the paper's 4-issue, 1-branch schedule machine.
func BenchmarkFigure5WcLoop(b *testing.B) {
	mc := machine.Issue4Br1()
	var sb, cm, fp sim.Stats
	for i := 0; i < b.N; i++ {
		sb = measure(b, "wc", core.Superblock, mc, nil)
		cm = measure(b, "wc", core.CondMove, mc, nil)
		fp = measure(b, "wc", core.FullPred, mc, nil)
	}
	b.ReportMetric(float64(sb.Cycles), "superblk-cycles")
	b.ReportMetric(float64(cm.Cycles), "condmove-cycles")
	b.ReportMetric(float64(fp.Cycles), "fullpred-cycles")
}

// BenchmarkFigure6GrepLoop reproduces the grep example (8-issue 1-branch):
// branch combining plus OR-type evaluation.
func BenchmarkFigure6GrepLoop(b *testing.B) {
	mc := machine.Issue8Br1()
	var sb, cm, fp sim.Stats
	for i := 0; i < b.N; i++ {
		sb = measure(b, "grep", core.Superblock, mc, nil)
		cm = measure(b, "grep", core.CondMove, mc, nil)
		fp = measure(b, "grep", core.FullPred, mc, nil)
	}
	b.ReportMetric(float64(sb.Cycles), "superblk-cycles")
	b.ReportMetric(float64(cm.Cycles), "condmove-cycles")
	b.ReportMetric(float64(fp.Cycles), "fullpred-cycles")
	b.ReportMetric(float64(sb.Branches), "superblk-branches")
	b.ReportMetric(float64(fp.Branches), "fullpred-branches")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationORTree: partial predication with and without OR-tree
// height reduction on grep.
func BenchmarkAblationORTree(b *testing.B) {
	mc := machine.Issue8Br1()
	with := core.DefaultOptions(mc)
	without := core.DefaultOptions(mc)
	without.NoPeephole = true
	var w, wo sim.Stats
	for i := 0; i < b.N; i++ {
		w = measure(b, "grep", core.CondMove, mc, &with)
		wo = measure(b, "grep", core.CondMove, mc, &without)
	}
	b.ReportMetric(float64(w.Cycles), "with-ortree-cycles")
	b.ReportMetric(float64(wo.Cycles), "without-ortree-cycles")
}

// BenchmarkAblationPromotion: conversion without predicate promotion
// (Figure 2's upper-right code shape) on wc.
func BenchmarkAblationPromotion(b *testing.B) {
	mc := machine.Issue8Br1()
	with := core.DefaultOptions(mc)
	without := core.DefaultOptions(mc)
	without.NoPromotion = true
	var w, wo sim.Stats
	for i := 0; i < b.N; i++ {
		w = measure(b, "wc", core.CondMove, mc, &with)
		wo = measure(b, "wc", core.CondMove, mc, &without)
	}
	b.ReportMetric(float64(w.Instrs), "with-promotion-instrs")
	b.ReportMetric(float64(wo.Instrs), "without-promotion-instrs")
}

// BenchmarkAblationCombining: grep with branch combining disabled — the
// misprediction anomaly disappears, the branch count rises.
func BenchmarkAblationCombining(b *testing.B) {
	mc := machine.Issue8Br1()
	with := core.DefaultOptions(mc)
	without := core.DefaultOptions(mc)
	without.Hyperblock.CombineBranches = false
	var w, wo sim.Stats
	for i := 0; i < b.N; i++ {
		w = measure(b, "grep", core.FullPred, mc, &with)
		wo = measure(b, "grep", core.FullPred, mc, &without)
	}
	b.ReportMetric(float64(w.Branches), "with-combining-branches")
	b.ReportMetric(float64(wo.Branches), "without-combining-branches")
	b.ReportMetric(float64(w.Mispredicts), "with-combining-mispredicts")
	b.ReportMetric(float64(wo.Mispredicts), "without-combining-mispredicts")
}

// BenchmarkAblationSuppressionStage: decode/issue-stage versus
// writeback-stage predicate suppression (§2.1) on wc full predication.
func BenchmarkAblationSuppressionStage(b *testing.B) {
	decodeCfg := machine.Issue8Br1()
	wbCfg := machine.Issue8Br1()
	wbCfg.WritebackSuppression = true
	wbOpts := core.DefaultOptions(wbCfg)
	var dec, wb sim.Stats
	for i := 0; i < b.N; i++ {
		dec = measure(b, "wc", core.FullPred, decodeCfg, nil)
		wb = measure(b, "wc", core.FullPred, wbCfg, &wbOpts)
	}
	b.ReportMetric(float64(dec.Cycles), "decode-suppress-cycles")
	b.ReportMetric(float64(wb.Cycles), "writeback-suppress-cycles")
}

// BenchmarkAblationExceptingConversion: Figure 3 (non-excepting) versus
// Figure 4 (excepting) conversion cost, with and without select
// instructions, on a division-heavy guarded kernel (divisions are where
// the Figure 4 sequences differ and where select saves an instruction).
func BenchmarkAblationExceptingConversion(b *testing.B) {
	mc := machine.Issue8Br1()
	nonExc := core.DefaultOptions(mc)
	exc := core.DefaultOptions(mc)
	exc.Partial.NonExcepting = false
	excSel := core.DefaultOptions(mc)
	excSel.Partial.NonExcepting = false
	excSel.Partial.UseSelect = true
	run := func(o *core.Options) sim.Stats {
		c, err := core.Compile(divKernel(), core.CondMove, *o)
		if err != nil {
			b.Fatal(err)
		}
		r, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		return sim.Simulate(c.Prog, r.Trace, mc)
	}
	var a, c, d sim.Stats
	for i := 0; i < b.N; i++ {
		a = run(&nonExc)
		c = run(&exc)
		d = run(&excSel)
	}
	b.ReportMetric(float64(a.Instrs), "nonexcepting-instrs")
	b.ReportMetric(float64(c.Instrs), "excepting-instrs")
	b.ReportMetric(float64(d.Instrs), "excepting-select-instrs")
}

// --- Component micro-benchmarks ---

func BenchmarkCompileFullPred(b *testing.B) {
	k, _ := bench.ByName("wc")
	mc := machine.Issue8Br1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(k.Build(), core.FullPred, core.DefaultOptions(mc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulate(b *testing.B) {
	k, _ := bench.ByName("wc")
	p := k.Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emu.Run(p, emu.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	k, _ := bench.ByName("wc")
	c, err := core.Compile(k.Build(), core.FullPred, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		b.Fatal(err)
	}
	run, err := emu.Run(c.Prog, emu.Options{Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Simulate(c.Prog, run.Trace, machine.Issue8Br1())
	}
}

// BenchmarkSimulateStreaming times the emulate+simulate path with the
// trace streamed into the simulator, never materialized — the harness's
// per-run configuration (contrast with BenchmarkSimulate, which replays a
// prebuilt slice).
func BenchmarkSimulateStreaming(b *testing.B) {
	k, _ := bench.ByName("wc")
	c, err := core.Compile(k.Build(), core.FullPred, core.DefaultOptions(machine.Issue8Br1()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(c.Prog, machine.Issue8Br1())
		if _, err := emu.Run(c.Prog, emu.Options{Sink: s}); err != nil {
			b.Fatal(err)
		}
		if s.Stats().Cycles == 0 {
			b.Fatal("empty simulation")
		}
	}
}

// divKernel is a loop whose diamond guards a division — the shape where
// the excepting conversions (Figure 4) must substitute a safe divisor.
func divKernel() *ir.Program {
	p := builder.New(1 << 12)
	const n = 800
	vals := make([]int64, n)
	s := uint64(17)
	for i := range vals {
		s = s*6364136223846793005 + 1
		vals[i] = int64((s >> 33) % 50) // zero ~2% of the time
	}
	data := p.Words(vals...)
	f := p.Func("main")
	i, v, acc := f.Reg(), f.Reg(), f.Reg()
	entry := f.Entry()
	loop := f.Block("loop")
	divB := f.Block("div")
	join := f.Block("join")
	done := f.Block("done")
	entry.Mov(i, 0).Mov(acc, 1000000)
	entry.Fall(loop)
	loop.Br(ir.GE, i, n, done)
	loop.Load(v, i, data)
	loop.Br(ir.EQ, v, 0, join) // guard the division against zero
	loop.Fall(divB)
	divB.I(ir.Div, acc, acc, v)
	divB.I(ir.Add, acc, acc, 1000)
	divB.Fall(join)
	join.I(ir.Add, i, i, 1)
	join.Jmp(loop)
	done.Store(0, 8, acc)
	done.Halt()
	return p.Program()
}
