// Figure 6 reproduction: the grep scan loop under the three models.
//
// The paper's grep discussion highlights two transformations:
//
//   - branch combining: the loop's many rarely-taken exit branches are
//     replaced by OR-type predicate defines accumulating into one exit
//     predicate, with a single predicated jump to a dispatch block (Table 3
//     shows grep's dynamic branches dropping from 663K to 171K);
//   - OR-tree height reduction for the partial-predication model: the
//     logical OR instructions that stand in for OR-type defines are
//     rebalanced from a linear chain into a log-depth tree.
//
// It also reproduces grep's misprediction anomaly: the combined exit
// mispredicts more than the original branches did, so the predicated
// models show a higher misprediction rate than superblock.
package main

import (
	"fmt"
	"log"

	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

func main() {
	k, err := bench.ByName("grep")
	if err != nil {
		log.Fatal(err)
	}
	mc := machine.Issue8Br1()

	for _, model := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
		c, err := core.Compile(k.Build(), model, core.DefaultOptions(mc))
		if err != nil {
			log.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		st := sim.Simulate(c.Prog, run.Trace, mc)
		fmt.Printf("=== %v ===\n", model)
		fmt.Printf("cycles=%d  instrs=%d  branches=%d  mispredicts=%d (MPR %.2f%%)\n\n",
			st.Cycles, st.Instrs, st.Branches, st.Mispredicts, 100*st.MispredictRate())

		// Show the scan loop itself for the predicated models.
		if model != core.Superblock {
			b := hottest(c.Prog.EntryFunc())
			fmt.Printf("scan loop (block B%d):\n", b.ID)
			for _, in := range b.Instrs {
				fmt.Printf("\t%s\n", in)
			}
			fmt.Println()
		}
	}
}

func hottest(f *ir.Func) *ir.Block {
	var best *ir.Block
	for _, b := range f.LiveBlocks(nil) {
		if best == nil || len(b.Instrs) > len(best.Instrs) {
			// The merged scan loop is the largest block in this program.
			best = b
		}
	}
	return best
}
