// Figure 5 reproduction: the wc inner loop compiled with full and partial
// predicate support, on the paper's example machine — a 4-issue processor
// that can issue one branch per cycle.
//
// The paper reports that hyperblock formation eliminates all but three
// branches (loop exit, the rare path, and the backedge), that the full
// predicate version needs noticeably fewer instructions than the
// conditional-move version, and that both beat the superblock baseline by
// removing essentially every misprediction.
package main

import (
	"fmt"
	"log"

	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/machine"
	"predication/internal/sched"
	"predication/internal/sim"
)

func main() {
	k, err := bench.ByName("wc")
	if err != nil {
		log.Fatal(err)
	}
	mc := machine.Issue4Br1() // the Figure 5 schedule machine

	for _, model := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
		c, err := core.Compile(k.Build(), model, core.DefaultOptions(mc))
		if err != nil {
			log.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		st := sim.Simulate(c.Prog, run.Trace, mc)
		fmt.Printf("=== %v ===\n", model)
		fmt.Printf("cycles=%d  dynamic instrs=%d  branches=%d  mispredicts=%d (%.2f%%)\n",
			st.Cycles, st.Instrs, st.Branches, st.Mispredicts, 100*st.MispredictRate())
		if model != core.Superblock {
			which := "Figure 5(c)"
			if model == core.FullPred {
				which = "Figure 5(b)"
			}
			fmt.Printf("\nloop with issue cycles (compare paper %s):\n", which)
			f := c.Prog.EntryFunc()
			// The hottest block is the loop hyperblock.
			best, bestLen := -1, -1
			for _, b := range f.LiveBlocks(nil) {
				if len(b.Instrs) > bestLen {
					best, bestLen = b.ID, len(b.Instrs)
				}
			}
			fmt.Print(sched.FormatSchedule(f.Blocks[best], mc))
		}
		fmt.Println()
	}
}
