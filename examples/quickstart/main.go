// Quickstart: build a small program with the IR builder, compile it under
// all three predication models, and compare simulated performance on the
// paper's 8-issue, 1-branch processor.
//
// The program is a classic if-conversion candidate: a loop with a
// data-dependent diamond (count positive and negative values of a
// pseudo-random array).
package main

import (
	"fmt"
	"log"

	"predication/internal/bench"
	"predication/internal/builder"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

func buildProgram() *ir.Program {
	p := builder.New(1 << 16)

	// Input data: 2000 pseudo-random signed words.
	const n = 2000
	seed := int64(12345)
	vals := make([]int64, n)
	for i := range vals {
		seed = seed*6364136223846793005 + 1442695040888963407
		vals[i] = (seed >> 40) % 1000
	}
	data := p.Words(vals...)

	f := p.Func("main")
	i, v, pos, neg, cs := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	isPos := f.Block("positive")
	isNeg := f.Block("negative")
	join := f.Block("join")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(pos, 0).Mov(neg, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, i, int64(n), done)
	loop.Load(v, i, data)
	loop.Br(ir.LT, v, 0, isNeg) // unpredictable: ~50/50
	loop.Fall(isPos)
	isPos.I(ir.Add, pos, pos, v)
	isPos.Jmp(join)
	isNeg.I(ir.Sub, neg, neg, v)
	isNeg.Fall(join)
	join.I(ir.Add, i, i, 1)
	join.Jmp(loop)
	done.I(ir.Mul, cs, pos, 31)
	done.I(ir.Add, cs, cs, neg)
	done.Store(0, bench.CheckAddr, cs)
	done.Halt()
	return p.Program()
}

func main() {
	mc := machine.Issue8Br1()
	base := machine.Issue1()

	// 1-issue superblock baseline: the paper's speedup denominator.
	cb, err := core.Compile(buildProgram(), core.Superblock, core.DefaultOptions(base))
	if err != nil {
		log.Fatal(err)
	}
	runB, err := emu.Run(cb.Prog, emu.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	baseCycles := sim.Simulate(cb.Prog, runB.Trace, base).Cycles

	fmt.Printf("%-18s %9s %9s %9s %8s %12s\n",
		"model", "cycles", "instrs", "branches", "mispred", "speedup-vs-1")
	for _, model := range []core.Model{core.Superblock, core.CondMove, core.FullPred} {
		c, err := core.Compile(buildProgram(), model, core.DefaultOptions(mc))
		if err != nil {
			log.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		st := sim.Simulate(c.Prog, run.Trace, mc)
		fmt.Printf("%-18v %9d %9d %9d %8d %11.2fx\n",
			model, st.Cycles, st.Instrs, st.Branches, st.Mispredicts,
			float64(baseCycles)/float64(st.Cycles))
	}
	fmt.Println("\nThe unpredictable diamond mispredicts constantly under the")
	fmt.Println("superblock model; both predicated models eliminate it entirely.")
}
