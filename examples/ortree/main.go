// OR-tree height reduction demonstration (§3.2 of the paper).
//
// With full predicate support, OR-type defines into the same predicate may
// issue simultaneously — condition evaluation has zero dependence height.
// With partial support, each define becomes a logical OR into a general
// register, a chain of sequentially dependent instructions.  The peephole
// optimizer rebalances the chain into a binary tree, cutting its height
// from n to ceil(log2(n+1)).
//
// This example builds an 8-condition OR directly, lowers it both with and
// without the OR-tree peephole, and compares schedule lengths on an 8-issue
// machine.
package main

import (
	"fmt"
	"log"

	"predication/internal/builder"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

func buildProgram() *ir.Program {
	p := builder.New(1 << 14)
	const n = 3000
	seed := int64(99)
	vals := make([]int64, n)
	for i := range vals {
		seed = seed*6364136223846793005 + 1
		vals[i] = (seed >> 33) & 255
	}
	data := p.Words(vals...)

	f := p.Func("main")
	i, v, hits, cs := f.Reg(), f.Reg(), f.Reg(), f.Reg()

	entry := f.Entry()
	loop := f.Block("loop")
	hit := f.Block("hit")
	next := f.Block("next")
	done := f.Block("done")

	entry.Mov(i, 0).Mov(hits, 0)
	entry.Fall(loop)
	loop.Br(ir.GE, i, int64(n), done)
	loop.Load(v, i, data)
	// Eight-way OR: v equal to any of eight sentinels?  Each comparison is
	// one rarely-true condition (the && / || construct of §2.1).
	for _, k := range []int64{3, 17, 40, 77, 130, 150, 200, 251} {
		loop.Br(ir.EQ, v, k, hit)
	}
	loop.Jmp(next)
	hit.I(ir.Add, hits, hits, 1)
	hit.Fall(next)
	next.I(ir.Add, i, i, 1)
	next.Jmp(loop)
	done.I(ir.Mul, cs, hits, 65599)
	done.Store(0, 8, cs)
	done.Halt()
	return p.Program()
}

func main() {
	mc := machine.Issue8Br1()
	for _, noPeephole := range []bool{true, false} {
		opts := core.DefaultOptions(mc)
		opts.NoPeephole = noPeephole
		c, err := core.Compile(buildProgram(), core.CondMove, opts)
		if err != nil {
			log.Fatal(err)
		}
		run, err := emu.Run(c.Prog, emu.Options{Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		st := sim.Simulate(c.Prog, run.Trace, mc)
		label := "with OR-tree reduction"
		if noPeephole {
			label = "linear OR chain (peephole disabled)"
		}
		fmt.Printf("%-38s cycles=%-7d IPC=%.2f\n", label, st.Cycles, st.IPC())
	}
	fmt.Println("\nFull predication evaluates the same condition with zero")
	fmt.Println("dependence height (simultaneous OR-type defines):")
	c, err := core.Compile(buildProgram(), core.FullPred, core.DefaultOptions(mc))
	if err != nil {
		log.Fatal(err)
	}
	run, err := emu.Run(c.Prog, emu.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	st := sim.Simulate(c.Prog, run.Trace, mc)
	fmt.Printf("%-38s cycles=%-7d IPC=%.2f\n", "full predication", st.Cycles, st.IPC())
}
