// Package predication reproduces the system evaluated in
//
//	S. A. Mahlke, R. E. Hank, J. E. McCormick, D. I. August, W. W. Hwu.
//	"A Comparison of Full and Partial Predicated Execution Support for
//	ILP Processors", ISCA-22, June 1995.
//
// It provides an ILP compiler and emulation-driven timing simulator for a
// generic load/store architecture with three levels of predicated
// execution support:
//
//   - Superblock — the baseline: no predication, superblock compilation
//     with speculative scheduling using silent (non-excepting)
//     instructions;
//   - CondMove — partial predication: hyperblock if-conversion in a fully
//     predicated IR, then lowering to conditional-move code;
//   - FullPred — full predication: a predicate register file, predicate
//     define instructions with U/OR/AND-type destinations, and guarded
//     execution of every instruction.
//
// The package is a facade over the internal compiler passes; the typical
// flow is: build a program (internal/builder or bench kernels), Compile it
// for a model and machine, Run the result on the emulator, and Simulate
// the trace on a machine configuration.  RunExperiments regenerates every
// figure and table of the paper's evaluation.
package predication

import (
	"predication/internal/bench"
	"predication/internal/core"
	"predication/internal/emu"
	"predication/internal/experiments"
	"predication/internal/ir"
	"predication/internal/machine"
	"predication/internal/sim"
)

// Model selects the target's predication support.
type Model = core.Model

// The three processor models of the paper (§4.1), plus the
// guard-instruction intermediate design point its conclusion asks future
// work to explore.
const (
	Superblock = core.Superblock
	CondMove   = core.CondMove
	FullPred   = core.FullPred
	GuardInstr = core.GuardInstr
)

// Config is a processor configuration (issue width, branch slots, caches,
// branch prediction).
type Config = machine.Config

// The paper's machine configurations.
var (
	// Issue8Br1 is the 8-issue, 1-branch, perfect-cache processor (Figure 8).
	Issue8Br1 = machine.Issue8Br1
	// Issue8Br2 is the 8-issue, 2-branch processor (Figure 9).
	Issue8Br2 = machine.Issue8Br2
	// Issue4Br1 is the 4-issue, 1-branch processor (Figure 10).
	Issue4Br1 = machine.Issue4Br1
	// Issue8Br1Cache adds 64K direct-mapped I/D caches (Figure 11).
	Issue8Br1Cache = machine.Issue8Br1Cache
	// Issue1 is the 1-issue baseline used as the speedup denominator.
	Issue1 = machine.Issue1
)

// Compile runs the full compilation pipeline for the model on a clone of
// the program: profiling, superblock or hyperblock formation, optimization,
// conversion (for CondMove), scheduling, and address assignment.
func Compile(p *ir.Program, model Model, cfg Config) (*core.Compiled, error) {
	return core.Compile(p, model, core.DefaultOptions(cfg))
}

// CompileWithOptions exposes the full pipeline option set (formation
// parameters, conversion variants, ablation switches).
func CompileWithOptions(p *ir.Program, model Model, opts core.Options) (*core.Compiled, error) {
	return core.Compile(p, model, opts)
}

// Run emulates a compiled program to completion, returning its final
// memory image and, when trace is true, the dynamic instruction trace.
func Run(p *ir.Program, trace bool) (*emu.Result, error) {
	return emu.Run(p, emu.Options{Trace: trace})
}

// TraceSink consumes the dynamic instruction stream as the emulator
// produces it (see RunInto and NewSimulator).
type TraceSink = emu.TraceSink

// RunInto emulates a compiled program, streaming every dynamic
// instruction into sink instead of materializing a trace.  With a
// NewSimulator sink this times the program in O(1) memory per run.
func RunInto(p *ir.Program, sink TraceSink) (*emu.Result, error) {
	return emu.Run(p, emu.Options{Sink: sink})
}

// Simulate times a materialized dynamic trace on the configured processor
// model.
func Simulate(p *ir.Program, trace []emu.Event, cfg Config) sim.Stats {
	return sim.Simulate(p, trace, cfg)
}

// NewSimulator creates a streaming timing simulator for the program and
// configuration.  It implements TraceSink: pass it to RunInto, then read
// its Stats.
func NewSimulator(p *ir.Program, cfg Config) *sim.Simulator {
	return sim.New(p, cfg)
}

// Benchmarks returns the fifteen benchmark kernels standing in for the
// paper's SPEC-92 and Unix utility programs.
func Benchmarks() []*bench.Kernel { return bench.All() }

// RunExperiments executes the complete evaluation (every benchmark, model,
// and machine configuration) and returns the suite from which all paper
// figures and tables render.
func RunExperiments(opts experiments.Options) (*experiments.Suite, error) {
	return experiments.Run(opts)
}
